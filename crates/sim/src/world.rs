//! The simulated world: nodes, tasks, network, ZooKeeper service, and the
//! deterministic step engine.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dcatch_obs::counter;
use dcatch_obs::rng::SmallRng;

use dcatch_model::{BinOp, Expr, FuncId, LoopId, NodeId, Program, UnOp, Value};
use dcatch_trace::{
    CallStack, CauseKey, EventId, ExecCtx, HandlerKind, LockRef, MemLoc, MemSpace, MsgId, OpKind,
    QueueInfo, Record, RpcId, StreamControl, TaskId, TraceSet, TraceSink, TracedFunctions,
    TracingMode,
};

use crate::compile::{CompiledProgram, Op};
use crate::config::SimConfig;
use crate::failure::{Failure, LogLevel, LogLine, RunFailureKind};
use crate::fault::{ChannelKind, CrashFault, MessageAction};
use crate::gate::{Gate, GateDecision, GateEvent, NoGate, StallAction};
use crate::topology::Topology;

/// Error preventing a run from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Description (validation or compilation problems).
    pub message: String,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot run simulation: {}", self.message)
    }
}

impl std::error::Error for RunError {}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct RunResult {
    /// The execution trace.
    pub trace: TraceSet,
    /// Observed failures, in occurrence order.
    pub failures: Vec<Failure>,
    /// Log lines.
    pub logs: Vec<LogLine>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Whether the run reached quiescence without deadlock/budget failures.
    pub completed: bool,
    /// Whether an installed gate gave up coordinating (the requested
    /// ordering was infeasible — a "serial" verdict for triggering).
    pub gate_abandoned: bool,
    /// Number of faults the fault-injection plan actually applied
    /// (message perturbations, crashes, restarts, RPC timeouts).
    pub faults_injected: u64,
}

impl RunResult {
    /// Whether the run had no failures at all.
    pub fn is_correct(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------------
// tasks

#[derive(Debug, Clone, PartialEq, Eq)]
enum TaskKind {
    /// Entry thread declared in the topology.
    Entry,
    /// Thread created by `Spawn`.
    Thread,
    /// Dedicated worker consuming one event queue.
    EventWorker { queue: String },
    /// Worker of the node's RPC server pool.
    RpcWorker,
    /// Worker of the node's socket message-handling pool.
    SocketWorker,
    /// The node's ZooKeeper-watcher notification thread.
    WatcherWorker,
}

#[derive(Debug, Clone, PartialEq)]
enum TaskState {
    Runnable,
    /// Worker with no work (daemons only).
    Idle,
    Sleeping {
        until: u64,
    },
    BlockedJoin {
        handle: u64,
    },
    BlockedRpc {
        rpc: u64,
    },
    BlockedLock {
        lock: String,
    },
    HeldByGate,
    Done,
    Killed,
    /// The task's node was crashed by the fault-injection plan.
    Crashed,
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    pc: usize,
    locals: BTreeMap<String, Value>,
    /// Caller-side local receiving this frame's return value.
    ret_local: Option<String>,
    /// The `Call` statement that created this frame (None for the root).
    call_site: Option<dcatch_model::StmtId>,
}

/// What a worker is currently handling, so the matching End record and
/// reply can be produced when the handler function returns.
#[derive(Debug, Clone)]
enum HandlerJob {
    Event { event: EventId },
    Rpc { rpc: RpcId, caller: usize },
    Socket,
    Watcher,
}

#[derive(Debug)]
struct Task {
    id: TaskId,
    node: NodeId,
    kind: TaskKind,
    state: TaskState,
    frames: Vec<Frame>,
    ctx: ExecCtx,
    begun: bool,
    /// Thread handle for `Join`.
    handle: u64,
    /// Local awaiting an RPC reply.
    rpc_ret_local: Option<String>,
    /// Current handler job (workers).
    job: Option<HandlerJob>,
    /// Value produced by the last `Return` that emptied the frame stack.
    last_return: Value,
    /// Per-loop iteration counters of the *current activation*.
    loop_iters: BTreeMap<LoopId, u32>,
    /// Step at which the task last entered `BlockedRpc` (for timeouts).
    blocked_at: u64,
}

// ---------------------------------------------------------------------------
// network & services

#[derive(Debug, Clone)]
enum Message {
    RpcRequest {
        rpc: RpcId,
        target: NodeId,
        func: FuncId,
        args: Vec<Value>,
        caller: usize,
    },
    RpcReply {
        rpc: RpcId,
        caller: usize,
        value: Value,
    },
    Socket {
        msg: MsgId,
        target: NodeId,
        func: FuncId,
        args: Vec<Value>,
    },
    ZkNotify {
        target: NodeId,
        handler: FuncId,
        path: String,
        version: u64,
        data: Value,
    },
}

/// A network message plus the earliest step it may be delivered at
/// (later than its send step only when a delay fault applies).
#[derive(Debug, Clone)]
struct InFlight {
    msg: Message,
    not_before: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum HeapObj {
    Cell(Value),
    Map(BTreeMap<String, Value>),
    List(Vec<Value>),
}

#[derive(Debug, Default, Clone)]
struct LockState {
    holder: Option<usize>,
}

#[derive(Debug, Clone)]
struct PendingEvent {
    event: EventId,
    func: FuncId,
    args: Vec<Value>,
}

#[derive(Debug, Clone)]
struct PendingRpc {
    rpc: RpcId,
    func: FuncId,
    args: Vec<Value>,
    caller: usize,
}

#[derive(Debug, Clone)]
struct PendingSocket {
    msg: MsgId,
    func: FuncId,
    args: Vec<Value>,
}

#[derive(Debug, Clone)]
struct PendingNotify {
    handler: FuncId,
    path: String,
    version: u64,
    data: Value,
}

#[derive(Debug, Default)]
struct ZkStore {
    /// path → data (present zknodes only).
    data: BTreeMap<String, Value>,
    /// path → last version ever (survives deletion, for notification pairing).
    versions: BTreeMap<String, u64>,
}

// ---------------------------------------------------------------------------
// world

/// The simulation state and step engine. Most callers use
/// [`World::run_once`] or [`World::run_with_gate`].
pub struct World<'g> {
    cp: CompiledProgram,
    topo: Topology,
    config: SimConfig,
    traced: TracedFunctions,

    rng: SmallRng,
    step: u64,
    seq: u64,

    tasks: Vec<Task>,
    heaps: Vec<BTreeMap<String, HeapObj>>,
    locks: Vec<BTreeMap<String, LockState>>,
    /// Lock waiters: (node, lock) → task indices.
    lock_waiters: BTreeMap<(u32, String), Vec<usize>>,
    queues: Vec<BTreeMap<String, VecDeque<PendingEvent>>>,
    rpc_pending: Vec<VecDeque<PendingRpc>>,
    socket_pending: Vec<VecDeque<PendingSocket>>,
    notify_pending: Vec<VecDeque<PendingNotify>>,
    net: Vec<InFlight>,
    zk: ZkStore,

    /// Per-node crashed flag (fault injection).
    crashed: Vec<bool>,
    /// Crash faults not yet applied.
    crash_queue: Vec<CrashFault>,
    /// Pending restarts: (step, node).
    pending_restarts: Vec<(u64, NodeId)>,
    /// Per-message-fault match counters (for `nth` selection).
    msg_fault_hits: Vec<u64>,
    /// Faults applied so far.
    faults_injected: u64,
    /// Traceable memory accesses seen so far (drives `mem_sample_rate`).
    mem_samples_seen: u64,

    trace: TraceSet,
    /// Streaming consumer: when present, records bypass `trace` and flow
    /// into the sink as they are emitted (plus lifecycle controls).
    sink: Option<&'g mut (dyn TraceSink + Send)>,
    failures: Vec<Failure>,
    logs: Vec<LogLine>,
    gate: &'g mut dyn Gate,
    gate_abandoned: bool,

    next_event: u64,
    next_rpc: u64,
    next_msg: u64,
    next_instance: u64,
    next_handle: u64,
    task_counters: Vec<u32>,
}

enum Action {
    RunTask(usize),
    Deliver(usize),
}

/// Aftermath of executing one instruction.
enum Flow {
    /// Advance to the next instruction.
    Next,
    /// Jump to an absolute pc.
    Goto(usize),
    /// Stay at the same pc (task blocked; instruction re-executes later).
    Stay,
    /// Control already adjusted (call/return) — do nothing.
    Handled,
    /// Task was killed.
    Dead,
}

impl<'g> World<'g> {
    /// Runs `program` on `topo` with the default (no-op) gate.
    pub fn run_once(
        program: &Program,
        topo: &Topology,
        config: SimConfig,
    ) -> Result<RunResult, RunError> {
        let mut gate = NoGate;
        World::run_with_gate(program, topo, config, &mut gate)
    }

    /// Runs `program` on `topo`, streaming every trace record and lifecycle
    /// control into `sink` as it is emitted instead of materializing a
    /// `TraceSet` (the returned result's trace holds only the queue/event
    /// side tables). The sink is called synchronously from the step loop:
    /// its `record` returning is the backpressure.
    pub fn run_streamed(
        program: &Program,
        topo: &Topology,
        config: SimConfig,
        sink: &mut (dyn TraceSink + Send),
    ) -> Result<RunResult, RunError> {
        let mut gate = NoGate;
        World::run_inner(program, topo, config, &mut gate, Some(sink))
    }

    /// Runs `program` on `topo`, consulting `gate` before and after every
    /// statement (the triggering module's controller).
    pub fn run_with_gate(
        program: &Program,
        topo: &Topology,
        config: SimConfig,
        gate: &'g mut dyn Gate,
    ) -> Result<RunResult, RunError> {
        World::run_inner(program, topo, config, gate, None)
    }

    fn run_inner(
        program: &Program,
        topo: &Topology,
        config: SimConfig,
        gate: &'g mut dyn Gate,
        sink: Option<&'g mut (dyn TraceSink + Send)>,
    ) -> Result<RunResult, RunError> {
        let problems = topo.validate(program);
        if !problems.is_empty() {
            return Err(RunError {
                message: problems.join("; "),
            });
        }
        let cp = CompiledProgram::compile(program).map_err(|e| RunError {
            message: e.to_string(),
        })?;
        let traced = TracedFunctions::compute(program);
        let crash_queue = config.faults.crashes.clone();
        let msg_fault_hits = vec![0; config.faults.messages.len()];
        let mut world = World {
            cp,
            topo: topo.clone(),
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            traced,
            step: 0,
            seq: 0,
            tasks: Vec::new(),
            heaps: vec![BTreeMap::new(); topo.nodes.len()],
            locks: vec![BTreeMap::new(); topo.nodes.len()],
            lock_waiters: BTreeMap::new(),
            queues: vec![BTreeMap::new(); topo.nodes.len()],
            rpc_pending: vec![VecDeque::new(); topo.nodes.len()],
            socket_pending: vec![VecDeque::new(); topo.nodes.len()],
            notify_pending: vec![VecDeque::new(); topo.nodes.len()],
            net: Vec::new(),
            zk: ZkStore::default(),
            crashed: vec![false; topo.nodes.len()],
            crash_queue,
            pending_restarts: Vec::new(),
            msg_fault_hits,
            faults_injected: 0,
            mem_samples_seen: 0,
            trace: TraceSet::new(),
            sink,
            failures: Vec::new(),
            logs: Vec::new(),
            gate,
            gate_abandoned: false,
            next_event: 0,
            next_rpc: 0,
            next_msg: 0,
            next_instance: 0,
            next_handle: 0,
            task_counters: vec![0; topo.nodes.len()],
        };
        let _span = dcatch_obs::span!("sim.run");
        counter!("sim_runs_total").inc();
        world.boot();
        world.run_loop();
        Ok(world.finish())
    }

    fn boot(&mut self) {
        for i in 0..self.topo.nodes.len() {
            self.setup_node(NodeId(i as u32));
        }
    }

    /// Creates a node's queues, worker pool, and entry tasks. Called once
    /// per node at boot, and again when a crashed node restarts.
    fn setup_node(&mut self, node: NodeId) {
        let nspec = self.topo.nodes[node.index()].clone();
        let i = node.index();
        for q in &nspec.queues {
            self.queues[i].insert(q.name.clone(), VecDeque::new());
            let info = QueueInfo {
                consumers: q.consumers,
            };
            self.trace.register_queue(node, q.name.clone(), info);
            if self.streaming() {
                self.ctl(StreamControl::RegisterQueue {
                    node,
                    queue: q.name.clone(),
                    info,
                });
            }
            for _ in 0..q.consumers {
                self.new_task(
                    node,
                    TaskKind::EventWorker {
                        queue: q.name.clone(),
                    },
                    TaskState::Idle,
                    None,
                );
            }
        }
        for _ in 0..nspec.rpc_workers {
            self.new_task(node, TaskKind::RpcWorker, TaskState::Idle, None);
        }
        for _ in 0..nspec.socket_workers {
            self.new_task(node, TaskKind::SocketWorker, TaskState::Idle, None);
        }
        if self.topo.watchers.iter().any(|w| w.node == node) {
            self.new_task(node, TaskKind::WatcherWorker, TaskState::Idle, None);
        }
        for (func, args) in &nspec.entries {
            let fid = self
                .cp
                .funcs()
                .iter()
                .position(|f| &f.name == func)
                .expect("validated entry");
            let fid = FuncId(fid as u32);
            let t = self.new_task(node, TaskKind::Entry, TaskState::Runnable, None);
            let frame = self.make_frame(fid, args.clone(), None, None);
            self.tasks[t].frames.push(frame);
            // entry threads have no `ThreadCreate` cause announcing them:
            // the sink must learn they exist before it retires anything
            // their future records could still race with
            let task = self.tasks[t].id;
            self.ctl(StreamControl::TaskStarted { task });
        }
    }

    fn new_task(
        &mut self,
        node: NodeId,
        kind: TaskKind,
        state: TaskState,
        ctx: Option<ExecCtx>,
    ) -> usize {
        let index = self.task_counters[node.index()];
        self.task_counters[node.index()] += 1;
        let handle = self.next_handle;
        self.next_handle += 1;
        self.tasks.push(Task {
            id: TaskId { node, index },
            node,
            kind,
            state,
            frames: Vec::new(),
            ctx: ctx.unwrap_or(ExecCtx::Regular),
            begun: false,
            handle,
            rpc_ret_local: None,
            job: None,
            last_return: Value::Unit,
            loop_iters: BTreeMap::new(),
            blocked_at: 0,
        });
        self.tasks.len() - 1
    }

    fn make_frame(
        &self,
        func: FuncId,
        args: Vec<Value>,
        ret_local: Option<String>,
        call_site: Option<dcatch_model::StmtId>,
    ) -> Frame {
        let cf = self.cp.func(func);
        let mut locals = BTreeMap::new();
        for (p, a) in cf.params.iter().zip(args) {
            locals.insert(p.clone(), a);
        }
        Frame {
            func,
            pc: 0,
            locals,
            ret_local,
            call_site,
        }
    }

    // -- tracing helpers ---------------------------------------------------

    fn stack_of(&self, t: usize) -> CallStack {
        let task = &self.tasks[t];
        let mut ids = Vec::new();
        for f in &task.frames {
            if let Some(site) = f.call_site {
                ids.push(site);
            }
        }
        if let Some(top) = task.frames.last() {
            let cf = self.cp.func(top.func);
            if top.pc < cf.instrs.len() {
                ids.push(cf.instrs[top.pc].stmt);
            }
        }
        CallStack(ids)
    }

    fn emit(&mut self, t: usize, kind: OpKind) {
        if !self.config.trace_enabled {
            return;
        }
        let stack = self.stack_of(t);
        let task = &self.tasks[t];
        let rec = Record {
            seq: self.seq,
            task: task.id,
            ctx: task.ctx,
            kind,
            stack,
        };
        self.seq += 1;
        match self.sink.as_mut() {
            Some(s) => s.record(&rec),
            None => self.trace.push(rec),
        }
        counter!("sim_trace_records_total").inc();
    }

    /// Sends an out-of-band control to the streaming sink, if any.
    fn ctl(&mut self, control: StreamControl) {
        if !self.config.trace_enabled {
            return;
        }
        if let Some(s) = self.sink.as_mut() {
            s.control(control);
        }
    }

    /// Whether the streaming sink (and tracing) is active, used to skip
    /// building control payloads on the batch path.
    fn streaming(&self) -> bool {
        self.sink.is_some() && self.config.trace_enabled
    }

    /// Whether a memory access in the current top frame of `t` is traced,
    /// and whether its value should be recorded.
    fn mem_trace_policy(&self, t: usize, object: &str) -> (bool, bool) {
        if !self.config.trace_enabled {
            return (false, false);
        }
        if let Some(focus) = &self.config.focus {
            return (focus.objects.contains(object), true);
        }
        match self.config.tracing {
            TracingMode::Full => (true, false),
            TracingMode::Selective => {
                let traced = self.tasks[t]
                    .frames
                    .last()
                    .is_some_and(|f| self.traced.contains(f.func));
                (traced, false)
            }
        }
    }

    fn emit_mem(&mut self, t: usize, write: bool, loc: MemLoc, value: &Value) {
        let (trace_it, with_value) = self.mem_trace_policy(t, &loc.object);
        if !trace_it {
            return;
        }
        // Rate-sampling applies only to plain memory-access records — never
        // to HB-related ops or focused value traces — and only decides what
        // is *recorded*: the execution itself is untouched, so the sampled
        // trace is an exact subsequence of the unsampled one.
        if self.config.mem_sample_rate > 1 && self.config.focus.is_none() {
            let keep = self.mem_samples_seen % u64::from(self.config.mem_sample_rate) == 0;
            self.mem_samples_seen += 1;
            if !keep {
                counter!("sim_mem_samples_dropped_total").inc();
                return;
            }
        }
        let value = with_value.then(|| value.key_string());
        let kind = if write {
            OpKind::MemWrite { loc, value }
        } else {
            OpKind::MemRead { loc, value }
        };
        self.emit(t, kind);
    }

    // -- failure helpers ----------------------------------------------------

    fn fail(&mut self, t: usize, kind: RunFailureKind, msg: impl Into<String>) {
        let task = &self.tasks[t];
        let stmt = task.frames.last().and_then(|f| {
            let cf = self.cp.func(f.func);
            cf.instrs.get(f.pc).map(|i| i.stmt)
        });
        self.failures.push(Failure {
            kind,
            node: task.node,
            task: Some(task.id),
            stmt,
            msg: msg.into(),
        });
    }

    fn kill(&mut self, t: usize, kind: RunFailureKind, msg: impl Into<String>) {
        self.fail(t, kind, msg);
        self.tasks[t].state = TaskState::Killed;
        let (task, ctx) = (self.tasks[t].id, self.tasks[t].ctx);
        self.ctl(StreamControl::ChainDone { task, ctx });
        self.release_locks_of(t);
        self.wake_joiners(t);
    }

    fn release_locks_of(&mut self, t: usize) {
        let node = self.tasks[t].node.index();
        let mut released = Vec::new();
        for (name, l) in self.locks[node].iter_mut() {
            if l.holder == Some(t) {
                l.holder = None;
                released.push(name.clone());
            }
        }
        for name in released {
            self.wake_lock_waiters(self.tasks[t].node, &name);
        }
    }

    fn wake_lock_waiters(&mut self, node: NodeId, lock: &str) {
        if let Some(ws) = self.lock_waiters.remove(&(node.0, lock.to_owned())) {
            for w in ws {
                if matches!(self.tasks[w].state, TaskState::BlockedLock { .. }) {
                    self.tasks[w].state = TaskState::Runnable;
                }
            }
        }
    }

    fn wake_joiners(&mut self, finished: usize) {
        let handle = self.tasks[finished].handle;
        for i in 0..self.tasks.len() {
            if matches!(&self.tasks[i].state, TaskState::BlockedJoin { handle: h } if *h == handle)
            {
                self.tasks[i].state = TaskState::Runnable;
            }
        }
    }

    // -- main loop -----------------------------------------------------------

    fn run_loop(&mut self) {
        let mut last_task: Option<usize> = None;
        loop {
            if self.step >= self.config.max_steps {
                self.failures.push(Failure {
                    kind: RunFailureKind::StepBudgetExhausted,
                    node: NodeId(0),
                    task: None,
                    stmt: None,
                    msg: format!("exceeded {} steps", self.config.max_steps),
                });
                return;
            }
            // apply fault-plan events whose step has come (no-op when the
            // plan is empty)
            self.apply_due_faults();
            // wake sleepers
            let now = self.step;
            for task in &mut self.tasks {
                if matches!(task.state, TaskState::Sleeping { until } if until <= now) {
                    task.state = TaskState::Runnable;
                }
            }
            // poll gate releases
            for i in 0..self.tasks.len() {
                if self.tasks[i].state == TaskState::HeldByGate
                    && self.gate.is_released(self.tasks[i].id)
                {
                    self.tasks[i].state = TaskState::Runnable;
                }
            }
            let actions = self.collect_actions();
            if actions.is_empty() {
                let min_sleep = self
                    .tasks
                    .iter()
                    .filter_map(|t| match t.state {
                        TaskState::Sleeping { until } => Some(until),
                        _ => None,
                    })
                    .min();
                let min_wake = match (min_sleep, self.next_fault_wake()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(min_wake) = min_wake {
                    counter!("sim_clock_advances_total").add(min_wake.saturating_sub(self.step));
                    self.step = min_wake;
                    continue;
                }
                let held: Vec<TaskId> = self
                    .tasks
                    .iter()
                    .filter(|t| t.state == TaskState::HeldByGate)
                    .map(|t| t.id)
                    .collect();
                if !held.is_empty() {
                    match self.gate.on_stall(&held) {
                        StallAction::Release(ids) => {
                            for id in ids {
                                if let Some(i) = self.tasks.iter().position(|t| t.id == id) {
                                    if self.tasks[i].state == TaskState::HeldByGate {
                                        self.tasks[i].state = TaskState::Runnable;
                                    }
                                }
                            }
                        }
                        StallAction::Abandon => {
                            self.gate_abandoned = true;
                            for t in &mut self.tasks {
                                if t.state == TaskState::HeldByGate {
                                    t.state = TaskState::Runnable;
                                }
                            }
                        }
                    }
                    continue;
                }
                self.detect_quiescence_outcome();
                return;
            }
            let pick = self.rng.gen_range(actions.len());
            match actions[pick] {
                Action::RunTask(i) => {
                    if last_task.is_some_and(|prev| prev != i) {
                        counter!("sim_context_switches_total").inc();
                    }
                    last_task = Some(i);
                    self.run_task_step(i);
                }
                Action::Deliver(m) => self.deliver(m),
            }
            self.step += 1;
            counter!("sim_steps_total").inc();
        }
    }

    fn collect_actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            match &t.state {
                TaskState::Runnable => actions.push(Action::RunTask(i)),
                TaskState::Idle => match &t.kind {
                    TaskKind::EventWorker { queue }
                        if self.queues[t.node.index()]
                            .get(queue)
                            .is_some_and(|q| !q.is_empty()) =>
                    {
                        actions.push(Action::RunTask(i));
                    }
                    TaskKind::RpcWorker if !self.rpc_pending[t.node.index()].is_empty() => {
                        actions.push(Action::RunTask(i));
                    }
                    TaskKind::SocketWorker if !self.socket_pending[t.node.index()].is_empty() => {
                        actions.push(Action::RunTask(i));
                    }
                    TaskKind::WatcherWorker if !self.notify_pending[t.node.index()].is_empty() => {
                        actions.push(Action::RunTask(i));
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        for (m, f) in self.net.iter().enumerate() {
            if f.not_before <= self.step {
                actions.push(Action::Deliver(m));
            }
        }
        actions
    }

    fn detect_quiescence_outcome(&mut self) {
        // Tasks of a deliberately crashed node are expected casualties,
        // not deadlock evidence: only blocked tasks on live nodes count.
        let blocked: Vec<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !self.crashed[t.node.index()]
                    && matches!(
                        t.state,
                        TaskState::BlockedJoin { .. }
                            | TaskState::BlockedRpc { .. }
                            | TaskState::BlockedLock { .. }
                    )
            })
            .map(|(i, _)| i)
            .collect();
        if !blocked.is_empty() {
            let first = blocked[0];
            let node = self.tasks[first].node;
            let desc: Vec<String> = blocked
                .iter()
                .map(|&i| {
                    let t = &self.tasks[i];
                    format!("{} ({:?})", t.id, t.state)
                })
                .collect();
            self.failures.push(Failure {
                kind: RunFailureKind::Deadlock,
                node,
                task: Some(self.tasks[first].id),
                stmt: None,
                msg: format!("blocked forever: {}", desc.join(", ")),
            });
        }
    }

    fn finish(self) -> RunResult {
        let deadlocked = self.failures.iter().any(|f| {
            matches!(
                f.kind,
                RunFailureKind::Deadlock | RunFailureKind::StepBudgetExhausted
            )
        });
        RunResult {
            trace: self.trace,
            failures: self.failures,
            logs: self.logs,
            steps: self.step,
            completed: !deadlocked,
            gate_abandoned: self.gate_abandoned,
            faults_injected: self.faults_injected,
        }
    }

    // -- fault injection ------------------------------------------------------

    /// Emits a node-level fault record (crash/restart). Attributed to the
    /// node's task 0 in regular context so the record joins that task's
    /// program-order group: everything the node did before the crash
    /// happens-before the crash record, and crash → restart is ordered.
    fn emit_node(&mut self, node: NodeId, kind: OpKind) {
        if !self.config.trace_enabled {
            return;
        }
        let rec = Record {
            seq: self.seq,
            task: TaskId { node, index: 0 },
            ctx: ExecCtx::Regular,
            kind,
            stack: CallStack::default(),
        };
        self.seq += 1;
        match self.sink.as_mut() {
            Some(s) => s.record(&rec),
            None => self.trace.push(rec),
        }
        counter!("sim_trace_records_total").inc();
    }

    fn count_fault(&mut self) {
        self.faults_injected += 1;
        counter!("faults_injected").inc();
    }

    /// Puts `msg` on the network, applying any matching message faults.
    /// With an empty plan this is exactly `net.push` (no rng involved).
    /// Returns how many copies were actually accepted (0 when a drop fault
    /// consumed the message, 2 when duplicated) so streaming mode can tell
    /// the sink how many deliveries the pending cause should wait for.
    fn send(&mut self, from: NodeId, msg: Message) -> usize {
        let channel = match &msg {
            Message::RpcRequest { .. } => ChannelKind::RpcRequest,
            Message::RpcReply { .. } => ChannelKind::RpcReply,
            Message::Socket { .. } => ChannelKind::Socket,
            Message::ZkNotify { .. } => ChannelKind::ZkNotify,
        };
        let to = match &msg {
            Message::RpcRequest { target, .. }
            | Message::Socket { target, .. }
            | Message::ZkNotify { target, .. } => *target,
            Message::RpcReply { caller, .. } => self.tasks[*caller].node,
        };
        let mut copies = 1usize;
        let mut delay = 0u64;
        for i in 0..self.config.faults.messages.len() {
            let (applies, nth, action) = {
                let f = &self.config.faults.messages[i];
                (f.applies(channel, from, to), f.nth, f.action)
            };
            if !applies {
                continue;
            }
            self.msg_fault_hits[i] += 1;
            if let Some(k) = nth {
                if self.msg_fault_hits[i] != k {
                    continue;
                }
            }
            match action {
                MessageAction::Drop => copies = 0,
                MessageAction::Delay(s) => delay = delay.max(s),
                MessageAction::Duplicate => {
                    if copies > 0 {
                        copies = 2;
                    }
                }
            }
            self.count_fault();
            counter!("sim_message_faults_total").inc();
        }
        let not_before = self.step.saturating_add(delay);
        for _ in 0..copies {
            self.net.push(InFlight {
                msg: msg.clone(),
                not_before,
            });
        }
        copies
    }

    /// Applies every fault whose time has come: the chaos panic hook,
    /// due crashes, due restarts, and RPC timeouts.
    fn apply_due_faults(&mut self) {
        if self.config.faults.panic_at_step == Some(self.step) {
            panic!(
                "fault plan injected a host panic at step {} (chaos hook)",
                self.step
            );
        }
        let mut i = 0;
        while i < self.crash_queue.len() {
            if self.crash_queue[i].at_step <= self.step {
                let c = self.crash_queue.remove(i);
                self.apply_crash(&c);
            } else {
                i += 1;
            }
        }
        let mut j = 0;
        while j < self.pending_restarts.len() {
            if self.pending_restarts[j].0 <= self.step {
                let (_, node) = self.pending_restarts.remove(j);
                self.apply_restart(node);
            } else {
                j += 1;
            }
        }
        if !self.config.faults.rpc_timeouts.is_empty() {
            self.fire_rpc_timeouts();
        }
    }

    fn apply_crash(&mut self, c: &CrashFault) {
        let node = c.node;
        if node.index() >= self.topo.nodes.len() || self.crashed[node.index()] {
            return;
        }
        self.crashed[node.index()] = true;
        self.count_fault();
        counter!("sim_node_crashes_total").inc();
        self.emit_node(node, OpKind::NodeCrash { node });
        let mut controls = Vec::new();
        for t in &mut self.tasks {
            if t.node == node && !matches!(t.state, TaskState::Done | TaskState::Killed) {
                t.state = TaskState::Crashed;
                controls.push(StreamControl::ChainDone {
                    task: t.id,
                    ctx: t.ctx,
                });
            }
        }
        // the node loses all volatile state; queued-but-undispatched work
        // dies with it, so its pending causes are announced as dropped
        let i = node.index();
        self.heaps[i].clear();
        self.locks[i].clear();
        self.lock_waiters.retain(|(n, _), _| *n != node.0);
        for q in self.queues[i].values_mut() {
            if self.sink.is_some() {
                for pe in q.iter() {
                    controls.push(StreamControl::CauseDropped {
                        key: CauseKey::EventBegin(pe.event.0),
                    });
                }
            }
            q.clear();
        }
        if self.sink.is_some() {
            for pr in &self.rpc_pending[i] {
                controls.push(StreamControl::CauseDropped {
                    key: CauseKey::RpcBegin(pr.rpc.0),
                });
            }
            for ps in &self.socket_pending[i] {
                controls.push(StreamControl::CauseDropped {
                    key: CauseKey::SocketRecv(ps.msg.0),
                });
            }
            for pn in &self.notify_pending[i] {
                controls.push(StreamControl::CauseDropped {
                    key: CauseKey::ZkPushed(pn.path.clone(), pn.version),
                });
            }
        }
        self.rpc_pending[i].clear();
        self.socket_pending[i].clear();
        self.notify_pending[i].clear();
        for c in controls {
            self.ctl(c);
        }
        if let Some(r) = c.restart_after {
            self.pending_restarts
                .push((self.step.saturating_add(r), node));
        }
    }

    fn apply_restart(&mut self, node: NodeId) {
        if !self.crashed[node.index()] {
            return;
        }
        self.crashed[node.index()] = false;
        self.count_fault();
        counter!("sim_node_restarts_total").inc();
        self.emit_node(node, OpKind::NodeRestart { node });
        // fresh worker pool and entry tasks; task indices keep counting
        // up, so reborn tasks are distinct from their pre-crash selves
        self.setup_node(node);
    }

    /// Wakes callers blocked on an RPC longer than a matching timeout
    /// policy allows: they receive `null` and continue. A late reply is
    /// ignored by `deliver` because the task no longer waits on that id.
    fn fire_rpc_timeouts(&mut self) {
        for t in 0..self.tasks.len() {
            let (rpc, node, since) = {
                let task = &self.tasks[t];
                match task.state {
                    TaskState::BlockedRpc { rpc } => (rpc, task.node, task.blocked_at),
                    _ => continue,
                }
            };
            if self.crashed[node.index()] {
                continue;
            }
            let waited = self.step.saturating_sub(since);
            let fires = self
                .config
                .faults
                .rpc_timeouts
                .iter()
                .any(|f| f.from.is_none_or(|n| n == node) && waited >= f.after);
            if !fires {
                continue;
            }
            let task = &mut self.tasks[t];
            if let (Some(local), Some(frame)) = (task.rpc_ret_local.take(), task.frames.last_mut())
            {
                frame.locals.insert(local, Value::Null);
            } else {
                task.rpc_ret_local = None;
            }
            task.state = TaskState::Runnable;
            self.emit(t, OpKind::RpcTimeout { rpc: RpcId(rpc) });
            self.count_fault();
            counter!("sim_rpc_timeouts_total").inc();
        }
    }

    /// The earliest future step at which a fault-plan event (due crash or
    /// restart, delayed message, RPC-timeout deadline) fires, if any.
    /// Used to advance the virtual clock through quiescent stretches.
    /// Events at or past the step budget are unreachable and ignored.
    fn next_fault_wake(&self) -> Option<u64> {
        let (now, budget) = (self.step, self.config.max_steps);
        let mut min: Option<u64> = None;
        let mut consider = |s: u64| {
            if s > now && s < budget && min.is_none_or(|m| s < m) {
                min = Some(s);
            }
        };
        for c in &self.crash_queue {
            consider(c.at_step);
        }
        for (s, _) in &self.pending_restarts {
            consider(*s);
        }
        for f in &self.net {
            consider(f.not_before);
        }
        if !self.config.faults.rpc_timeouts.is_empty() {
            for task in &self.tasks {
                if !matches!(task.state, TaskState::BlockedRpc { .. })
                    || self.crashed[task.node.index()]
                {
                    continue;
                }
                for f in &self.config.faults.rpc_timeouts {
                    if f.from.is_none_or(|n| n == task.node) {
                        consider(task.blocked_at.saturating_add(f.after));
                    }
                }
            }
        }
        min
    }

    // -- delivery -------------------------------------------------------------

    fn deliver(&mut self, m: usize) {
        let msg = self.net.remove(m).msg;
        // messages to a crashed node are lost at delivery time
        let target = match &msg {
            Message::RpcRequest { target, .. }
            | Message::Socket { target, .. }
            | Message::ZkNotify { target, .. } => *target,
            Message::RpcReply { caller, .. } => self.tasks[*caller].node,
        };
        if self.crashed[target.index()] {
            counter!("sim_messages_dropped_total").inc();
            if self.streaming() {
                let key = match &msg {
                    Message::RpcRequest { rpc, .. } => CauseKey::RpcBegin(rpc.0),
                    Message::RpcReply { rpc, .. } => CauseKey::RpcJoin(rpc.0),
                    Message::Socket { msg, .. } => CauseKey::SocketRecv(msg.0),
                    Message::ZkNotify { path, version, .. } => {
                        CauseKey::ZkPushed(path.clone(), *version)
                    }
                };
                self.ctl(StreamControl::CauseDropped { key });
            }
            return;
        }
        counter!("sim_messages_delivered_total").inc();
        match msg {
            Message::RpcRequest {
                rpc,
                target,
                func,
                args,
                caller,
            } => {
                self.rpc_pending[target.index()].push_back(PendingRpc {
                    rpc,
                    func,
                    args,
                    caller,
                });
            }
            Message::RpcReply { rpc, caller, value } => {
                let task = &mut self.tasks[caller];
                if matches!(task.state, TaskState::BlockedRpc { rpc: r } if r == rpc.0) {
                    if let (Some(local), Some(frame)) =
                        (task.rpc_ret_local.take(), task.frames.last_mut())
                    {
                        frame.locals.insert(local, value);
                    } else {
                        task.rpc_ret_local = None;
                    }
                    task.state = TaskState::Runnable;
                    self.emit(caller, OpKind::RpcJoin { rpc });
                    counter!("sim_rpcs_completed_total").inc();
                } else {
                    // late reply after an RPC timeout (or a duplicated
                    // reply): the caller no longer waits on this id, so
                    // the pending `RpcEnd ⇒ RpcJoin` cause loses a copy
                    self.ctl(StreamControl::CauseDropped {
                        key: CauseKey::RpcJoin(rpc.0),
                    });
                }
            }
            Message::Socket {
                msg,
                target,
                func,
                args,
            } => {
                self.socket_pending[target.index()].push_back(PendingSocket { msg, func, args });
            }
            Message::ZkNotify {
                target,
                handler,
                path,
                version,
                data,
            } => {
                self.notify_pending[target.index()].push_back(PendingNotify {
                    handler,
                    path,
                    version,
                    data,
                });
            }
        }
    }

    // -- task stepping ----------------------------------------------------------

    fn run_task_step(&mut self, t: usize) {
        // dispatch work to idle workers
        if self.tasks[t].state == TaskState::Idle {
            match self.tasks[t].kind.clone() {
                TaskKind::EventWorker { queue } => self.dispatch_event(t, &queue),
                TaskKind::RpcWorker => self.dispatch_rpc(t),
                TaskKind::SocketWorker => self.dispatch_socket(t),
                TaskKind::WatcherWorker => self.dispatch_notify(t),
                _ => {}
            }
            return;
        }
        if self.tasks[t].frames.is_empty() {
            // nothing to run (shouldn't happen); park the task
            self.tasks[t].state = TaskState::Done;
            return;
        }
        if !self.tasks[t].begun && matches!(self.tasks[t].kind, TaskKind::Entry | TaskKind::Thread)
        {
            self.tasks[t].begun = true;
            self.emit(t, OpKind::ThreadBegin);
        }
        let frame = self.tasks[t].frames.last().expect("frame");
        let (func, pc) = (frame.func, frame.pc);
        let instr = self.cp.func(func).instrs[pc].clone();

        // gate consultation
        let ev = GateEvent {
            task: self.tasks[t].id,
            stmt: instr.stmt,
            stack: self.stack_of(t),
        };
        if self.gate.before(&ev) == GateDecision::Hold {
            self.tasks[t].state = TaskState::HeldByGate;
            return;
        }

        let flow = self.exec(t, &instr.op, instr.stmt);
        match flow {
            Flow::Next => {
                if let Some(f) = self.tasks[t].frames.last_mut() {
                    f.pc += 1;
                }
            }
            Flow::Goto(target) => {
                if let Some(f) = self.tasks[t].frames.last_mut() {
                    f.pc = target;
                }
            }
            Flow::Stay | Flow::Handled | Flow::Dead => {}
        }
        // confirm only operations that actually executed: a blocked
        // instruction (Flow::Stay) re-runs later and must not advance the
        // controller's protocol
        if !matches!(flow, Flow::Dead | Flow::Stay) {
            self.gate.after(&ev);
        }
    }

    fn dispatch_event(&mut self, t: usize, queue: &str) {
        let node = self.tasks[t].node.index();
        let Some(pe) = self.queues[node]
            .get_mut(queue)
            .and_then(VecDeque::pop_front)
        else {
            return;
        };
        let instance = self.next_instance;
        self.next_instance += 1;
        self.tasks[t].ctx = ExecCtx::Handler {
            kind: HandlerKind::Event,
            instance,
        };
        self.tasks[t].job = Some(HandlerJob::Event { event: pe.event });
        self.tasks[t].state = TaskState::Runnable;
        let frame = self.make_frame(pe.func, pe.args, None, None);
        self.tasks[t].frames.push(frame);
        self.emit(t, OpKind::EventBegin { event: pe.event });
        counter!("sim_events_dispatched_total").inc();
    }

    fn dispatch_rpc(&mut self, t: usize) {
        let node = self.tasks[t].node.index();
        let Some(pr) = self.rpc_pending[node].pop_front() else {
            return;
        };
        let instance = self.next_instance;
        self.next_instance += 1;
        self.tasks[t].ctx = ExecCtx::Handler {
            kind: HandlerKind::Rpc,
            instance,
        };
        self.tasks[t].job = Some(HandlerJob::Rpc {
            rpc: pr.rpc,
            caller: pr.caller,
        });
        self.tasks[t].state = TaskState::Runnable;
        let frame = self.make_frame(pr.func, pr.args, None, None);
        self.tasks[t].frames.push(frame);
        self.emit(t, OpKind::RpcBegin { rpc: pr.rpc });
    }

    fn dispatch_socket(&mut self, t: usize) {
        let node = self.tasks[t].node.index();
        let Some(ps) = self.socket_pending[node].pop_front() else {
            return;
        };
        let instance = self.next_instance;
        self.next_instance += 1;
        self.tasks[t].ctx = ExecCtx::Handler {
            kind: HandlerKind::Socket,
            instance,
        };
        self.tasks[t].job = Some(HandlerJob::Socket);
        self.tasks[t].state = TaskState::Runnable;
        let frame = self.make_frame(ps.func, ps.args, None, None);
        self.tasks[t].frames.push(frame);
        self.emit(t, OpKind::SocketRecv { msg: ps.msg });
    }

    fn dispatch_notify(&mut self, t: usize) {
        let node = self.tasks[t].node.index();
        let Some(pn) = self.notify_pending[node].pop_front() else {
            return;
        };
        let instance = self.next_instance;
        self.next_instance += 1;
        self.tasks[t].ctx = ExecCtx::Handler {
            kind: HandlerKind::ZkWatcher,
            instance,
        };
        self.tasks[t].job = Some(HandlerJob::Watcher);
        self.tasks[t].state = TaskState::Runnable;
        let frame = self.make_frame(
            pn.handler,
            vec![Value::Str(pn.path.clone()), pn.data],
            None,
            None,
        );
        self.tasks[t].frames.push(frame);
        self.emit(
            t,
            OpKind::ZkPushed {
                path: pn.path,
                version: pn.version,
            },
        );
    }

    /// The task's function body finished with `value`.
    fn task_body_finished(&mut self, t: usize, value: Value) {
        self.tasks[t].last_return = value.clone();
        // the chain that is ending is (task, current ctx) — captured before
        // worker arms reset their context back to Regular
        let (task, ctx) = (self.tasks[t].id, self.tasks[t].ctx);
        match self.tasks[t].kind.clone() {
            TaskKind::Entry | TaskKind::Thread => {
                self.emit(t, OpKind::ThreadEnd);
                self.tasks[t].state = TaskState::Done;
                self.ctl(StreamControl::ChainDone { task, ctx });
                self.wake_joiners(t);
            }
            TaskKind::SocketWorker | TaskKind::WatcherWorker => {
                self.tasks[t].job = None;
                self.tasks[t].ctx = ExecCtx::Regular;
                self.tasks[t].state = TaskState::Idle;
                self.ctl(StreamControl::ChainDone { task, ctx });
            }
            TaskKind::EventWorker { .. } => {
                if let Some(HandlerJob::Event { event }) = self.tasks[t].job.take() {
                    self.emit(t, OpKind::EventEnd { event });
                }
                self.tasks[t].ctx = ExecCtx::Regular;
                self.tasks[t].state = TaskState::Idle;
                self.ctl(StreamControl::ChainDone { task, ctx });
            }
            TaskKind::RpcWorker => {
                if let Some(HandlerJob::Rpc { rpc, caller }) = self.tasks[t].job.take() {
                    self.emit(t, OpKind::RpcEnd { rpc });
                    let from = self.tasks[t].node;
                    let copies = self.send(from, Message::RpcReply { rpc, caller, value });
                    if self.streaming() {
                        self.ctl(StreamControl::CauseFanout {
                            key: CauseKey::RpcJoin(rpc.0),
                            copies: copies as u32,
                        });
                    }
                }
                self.tasks[t].ctx = ExecCtx::Regular;
                self.tasks[t].state = TaskState::Idle;
                self.ctl(StreamControl::ChainDone { task, ctx });
            }
        }
    }

    // -- expression evaluation ----------------------------------------------------

    fn eval(&self, t: usize, e: &Expr) -> Result<Value, String> {
        let frame = self.tasks[t].frames.last().ok_or("no frame")?;
        self.eval_in(&frame.locals, self.tasks[t].node, e)
    }

    fn eval_in(
        &self,
        locals: &BTreeMap<String, Value>,
        node: NodeId,
        e: &Expr,
    ) -> Result<Value, String> {
        match e {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Local(name) => locals
                .get(name)
                .cloned()
                .ok_or_else(|| format!("undefined local `{name}`")),
            Expr::SelfNode => Ok(Value::Node(node)),
            Expr::Unary(op, a) => {
                let a = self.eval_in(locals, node, a)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!a.truthy())),
                    UnOp::Neg => a
                        .as_int()
                        .map(|i| Value::Int(-i))
                        .ok_or_else(|| "negation of non-integer".to_owned()),
                }
            }
            Expr::Binary(op, a, b) => {
                let a = self.eval_in(locals, node, a)?;
                let b = self.eval_in(locals, node, b)?;
                let ints = || -> Result<(i64, i64), String> {
                    match (a.as_int(), b.as_int()) {
                        (Some(x), Some(y)) => Ok((x, y)),
                        _ => Err(format!("arithmetic on non-integers ({a}, {b})")),
                    }
                };
                Ok(match op {
                    BinOp::Add => {
                        let (x, y) = ints()?;
                        Value::Int(x.wrapping_add(y))
                    }
                    BinOp::Sub => {
                        let (x, y) = ints()?;
                        Value::Int(x.wrapping_sub(y))
                    }
                    BinOp::Eq => Value::Bool(a == b),
                    BinOp::Ne => Value::Bool(a != b),
                    BinOp::Lt => {
                        let (x, y) = ints()?;
                        Value::Bool(x < y)
                    }
                    BinOp::Le => {
                        let (x, y) = ints()?;
                        Value::Bool(x <= y)
                    }
                    BinOp::Gt => {
                        let (x, y) = ints()?;
                        Value::Bool(x > y)
                    }
                    BinOp::Ge => {
                        let (x, y) = ints()?;
                        Value::Bool(x >= y)
                    }
                    BinOp::And => Value::Bool(a.truthy() && b.truthy()),
                    BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
                    BinOp::Concat => Value::Str(format!("{}{}", a.key_string(), b.key_string())),
                })
            }
        }
    }

    fn eval_or_kill(&mut self, t: usize, e: &Expr) -> Option<Value> {
        match self.eval(t, e) {
            Ok(v) => Some(v),
            Err(msg) => {
                self.kill(t, RunFailureKind::UncaughtThrow("EvalError".into()), msg);
                None
            }
        }
    }

    fn eval_node(&mut self, t: usize, e: &Expr) -> Option<NodeId> {
        let v = self.eval_or_kill(t, e)?;
        match v.as_node() {
            Some(n) if n.index() < self.topo.nodes.len() => Some(n),
            _ => {
                self.kill(
                    t,
                    RunFailureKind::UncaughtThrow("UnknownHostException".into()),
                    format!("`{v}` is not a node"),
                );
                None
            }
        }
    }

    fn set_local(&mut self, t: usize, local: &str, v: Value) {
        if let Some(f) = self.tasks[t].frames.last_mut() {
            f.locals.insert(local.to_owned(), v);
        }
    }

    fn heap_loc(&self, t: usize, object: &str, key: Option<String>) -> MemLoc {
        MemLoc {
            space: MemSpace::Heap,
            node: self.tasks[t].node,
            object: object.to_owned(),
            key,
        }
    }

    fn zk_loc(&self, path: &str) -> MemLoc {
        MemLoc {
            space: MemSpace::Zk,
            node: NodeId(0),
            object: path.to_owned(),
            key: None,
        }
    }

    // -- instruction execution ---------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, t: usize, op: &Op, stmt: dcatch_model::StmtId) -> Flow {
        match op {
            Op::Assign { local, expr } => {
                let Some(v) = self.eval_or_kill(t, expr) else {
                    return Flow::Dead;
                };
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::Read { local, object } => {
                let node = self.tasks[t].node.index();
                let v = match self.heaps[node].get(object) {
                    Some(HeapObj::Cell(v)) => v.clone(),
                    None => Value::Null,
                    Some(_) => {
                        self.kill(
                            t,
                            RunFailureKind::UncaughtThrow("ClassCastException".into()),
                            format!("`{object}` is not a cell"),
                        );
                        return Flow::Dead;
                    }
                };
                let loc = self.heap_loc(t, object, None);
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::Write { object, value } => {
                let Some(v) = self.eval_or_kill(t, value) else {
                    return Flow::Dead;
                };
                let node = self.tasks[t].node.index();
                self.heaps[node].insert(object.clone(), HeapObj::Cell(v.clone()));
                let loc = self.heap_loc(t, object, None);
                self.emit_mem(t, true, loc, &v);
                Flow::Next
            }
            Op::MapPut { map, key, value } => {
                let (Some(k), Some(v)) = (self.eval_or_kill(t, key), self.eval_or_kill(t, value))
                else {
                    return Flow::Dead;
                };
                let k = k.key_string();
                let node = self.tasks[t].node.index();
                let entry = self.heaps[node]
                    .entry(map.clone())
                    .or_insert_with(|| HeapObj::Map(BTreeMap::new()));
                let HeapObj::Map(m) = entry else {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("ClassCastException".into()),
                        format!("`{map}` is not a map"),
                    );
                    return Flow::Dead;
                };
                m.insert(k.clone(), v.clone());
                let loc = self.heap_loc(t, map, Some(k));
                self.emit_mem(t, true, loc, &v);
                Flow::Next
            }
            Op::MapGet { local, map, key } => {
                let Some(k) = self.eval_or_kill(t, key) else {
                    return Flow::Dead;
                };
                let k = k.key_string();
                let node = self.tasks[t].node.index();
                let v = match self.heaps[node].get(map) {
                    Some(HeapObj::Map(m)) => m.get(&k).cloned().unwrap_or(Value::Null),
                    None => Value::Null,
                    Some(_) => {
                        self.kill(
                            t,
                            RunFailureKind::UncaughtThrow("ClassCastException".into()),
                            format!("`{map}` is not a map"),
                        );
                        return Flow::Dead;
                    }
                };
                let loc = self.heap_loc(t, map, Some(k));
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::MapRemove { map, key } => {
                let Some(k) = self.eval_or_kill(t, key) else {
                    return Flow::Dead;
                };
                let k = k.key_string();
                let node = self.tasks[t].node.index();
                if let Some(HeapObj::Map(m)) = self.heaps[node].get_mut(map) {
                    m.remove(&k);
                }
                let loc = self.heap_loc(t, map, Some(k));
                self.emit_mem(t, true, loc, &Value::Null);
                Flow::Next
            }
            Op::MapContains { local, map, key } => {
                let Some(k) = self.eval_or_kill(t, key) else {
                    return Flow::Dead;
                };
                let k = k.key_string();
                let node = self.tasks[t].node.index();
                let present = matches!(
                    self.heaps[node].get(map),
                    Some(HeapObj::Map(m)) if m.contains_key(&k)
                );
                let loc = self.heap_loc(t, map, Some(k));
                let v = Value::Bool(present);
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::ListAdd { list, value } => {
                let Some(v) = self.eval_or_kill(t, value) else {
                    return Flow::Dead;
                };
                let node = self.tasks[t].node.index();
                let entry = self.heaps[node]
                    .entry(list.clone())
                    .or_insert_with(|| HeapObj::List(Vec::new()));
                let HeapObj::List(l) = entry else {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("ClassCastException".into()),
                        format!("`{list}` is not a list"),
                    );
                    return Flow::Dead;
                };
                l.push(v.clone());
                let loc = self.heap_loc(t, list, None);
                self.emit_mem(t, true, loc, &v);
                Flow::Next
            }
            Op::ListRemove { list, value } => {
                let Some(v) = self.eval_or_kill(t, value) else {
                    return Flow::Dead;
                };
                let node = self.tasks[t].node.index();
                if let Some(HeapObj::List(l)) = self.heaps[node].get_mut(list) {
                    if let Some(pos) = l.iter().position(|x| x == &v) {
                        l.remove(pos);
                    }
                }
                let loc = self.heap_loc(t, list, None);
                self.emit_mem(t, true, loc, &v);
                Flow::Next
            }
            Op::ListIsEmpty { local, list } => {
                let node = self.tasks[t].node.index();
                let empty = match self.heaps[node].get(list) {
                    Some(HeapObj::List(l)) => l.is_empty(),
                    _ => true,
                };
                let loc = self.heap_loc(t, list, None);
                let v = Value::Bool(empty);
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::ListContains { local, list, value } => {
                let Some(v) = self.eval_or_kill(t, value) else {
                    return Flow::Dead;
                };
                let node = self.tasks[t].node.index();
                let present = matches!(
                    self.heaps[node].get(list),
                    Some(HeapObj::List(l)) if l.contains(&v)
                );
                let loc = self.heap_loc(t, list, None);
                let out = Value::Bool(present);
                self.emit_mem(t, false, loc, &out);
                self.set_local(t, local, out);
                Flow::Next
            }

            Op::Branch { cond, target } => {
                let Some(v) = self.eval_or_kill(t, cond) else {
                    return Flow::Dead;
                };
                if v.truthy() {
                    Flow::Next
                } else {
                    Flow::Goto(*target)
                }
            }
            Op::Jump { target } => Flow::Goto(*target),
            Op::LoopEnter { loop_id, retry } => {
                self.tasks[t].loop_iters.insert(*loop_id, 0);
                if *retry {
                    self.emit(t, OpKind::LoopEnter { loop_id: *loop_id });
                }
                Flow::Next
            }
            Op::LoopHead {
                loop_id,
                retry,
                cond,
                exit,
            } => {
                let Some(v) = self.eval_or_kill(t, cond) else {
                    return Flow::Dead;
                };
                if !v.truthy() {
                    return Flow::Goto(*exit);
                }
                let iters = self.tasks[t].loop_iters.entry(*loop_id).or_insert(0);
                *iters += 1;
                if *retry && *iters > self.config.retry_loop_budget {
                    self.kill(
                        t,
                        RunFailureKind::RetryLoopHang(*loop_id),
                        format!(
                            "retry loop {} spun past {} iterations",
                            loop_id.0, self.config.retry_loop_budget
                        ),
                    );
                    return Flow::Dead;
                }
                Flow::Next
            }
            Op::LoopExit { loop_id, retry } => {
                if *retry {
                    self.emit(t, OpKind::LoopExit { loop_id: *loop_id });
                }
                Flow::Next
            }

            Op::Call { local, func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_or_kill(t, a) {
                        Some(v) => vals.push(v),
                        None => return Flow::Dead,
                    }
                }
                // advance caller pc first so return lands after the call
                if let Some(f) = self.tasks[t].frames.last_mut() {
                    f.pc += 1;
                }
                let frame = self.make_frame(*func, vals, local.clone(), Some(stmt));
                self.tasks[t].frames.push(frame);
                Flow::Handled
            }
            Op::Return { expr } => {
                let v = match expr {
                    Some(e) => match self.eval_or_kill(t, e) {
                        Some(v) => v,
                        None => return Flow::Dead,
                    },
                    None => Value::Unit,
                };
                let finished = self.tasks[t].frames.pop().expect("frame");
                if self.tasks[t].frames.is_empty() {
                    self.task_body_finished(t, v);
                } else if let Some(local) = finished.ret_local {
                    self.set_local(t, &local, v);
                }
                Flow::Handled
            }

            Op::Spawn { local, func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_or_kill(t, a) {
                        Some(v) => vals.push(v),
                        None => return Flow::Dead,
                    }
                }
                let node = self.tasks[t].node;
                let child = self.new_task(node, TaskKind::Thread, TaskState::Runnable, None);
                let frame = self.make_frame(*func, vals, None, None);
                self.tasks[child].frames.push(frame);
                let child_id = self.tasks[child].id;
                let handle = self.tasks[child].handle;
                self.emit(t, OpKind::ThreadCreate { child: child_id });
                if let Some(local) = local {
                    self.set_local(t, local, Value::Thread(handle));
                }
                Flow::Next
            }
            Op::Join { handle } => {
                let Some(v) = self.eval_or_kill(t, handle) else {
                    return Flow::Dead;
                };
                let Value::Thread(h) = v else {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("ClassCastException".into()),
                        format!("join of non-thread `{v}`"),
                    );
                    return Flow::Dead;
                };
                let Some(child) = self.tasks.iter().position(|x| x.handle == h) else {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("IllegalThreadState".into()),
                        "join of unknown thread",
                    );
                    return Flow::Dead;
                };
                match self.tasks[child].state {
                    TaskState::Done | TaskState::Killed => {
                        let child_id = self.tasks[child].id;
                        self.emit(t, OpKind::ThreadJoin { child: child_id });
                        Flow::Next
                    }
                    _ => {
                        self.tasks[t].state = TaskState::BlockedJoin { handle: h };
                        Flow::Stay
                    }
                }
            }
            Op::Enqueue { queue, func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_or_kill(t, a) {
                        Some(v) => vals.push(v),
                        None => return Flow::Dead,
                    }
                }
                let node = self.tasks[t].node;
                if !self.queues[node.index()].contains_key(queue) {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("NoSuchQueueException".into()),
                        format!("queue `{queue}` not declared on {node}"),
                    );
                    return Flow::Dead;
                }
                let event = EventId(self.next_event);
                self.next_event += 1;
                // register before emitting so a streaming sink knows the
                // event's queue when the `EventCreate` record arrives
                self.trace.register_event(event.0, node, queue.clone());
                if self.streaming() {
                    self.ctl(StreamControl::RegisterEvent {
                        event: event.0,
                        node,
                        queue: queue.clone(),
                    });
                }
                self.emit(t, OpKind::EventCreate { event });
                self.queues[node.index()]
                    .get_mut(queue)
                    .expect("checked")
                    .push_back(PendingEvent {
                        event,
                        func: *func,
                        args: vals,
                    });
                Flow::Next
            }
            Op::Lock { lock } => {
                let node = self.tasks[t].node;
                let state = self.locks[node.index()].entry(lock.clone()).or_default();
                match state.holder {
                    None => {
                        state.holder = Some(t);
                        let lr = LockRef {
                            node,
                            name: lock.clone(),
                        };
                        self.emit(t, OpKind::LockAcquire { lock: lr });
                        Flow::Next
                    }
                    Some(h) if h == t => {
                        self.kill(
                            t,
                            RunFailureKind::UncaughtThrow("IllegalMonitorState".into()),
                            format!("reentrant acquisition of `{lock}`"),
                        );
                        Flow::Dead
                    }
                    Some(_) => {
                        self.lock_waiters
                            .entry((node.0, lock.clone()))
                            .or_default()
                            .push(t);
                        self.tasks[t].state = TaskState::BlockedLock { lock: lock.clone() };
                        Flow::Stay
                    }
                }
            }
            Op::Unlock { lock } => {
                let node = self.tasks[t].node;
                let held = self.locks[node.index()]
                    .get(lock)
                    .is_some_and(|l| l.holder == Some(t));
                if !held {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("IllegalMonitorState".into()),
                        format!("unlock of `{lock}` not held"),
                    );
                    return Flow::Dead;
                }
                self.locks[node.index()].get_mut(lock).expect("held").holder = None;
                let lr = LockRef {
                    node,
                    name: lock.clone(),
                };
                self.emit(t, OpKind::LockRelease { lock: lr });
                self.wake_lock_waiters(node, lock);
                Flow::Next
            }

            Op::RpcCall {
                local,
                node,
                func,
                args,
            } => {
                let Some(target) = self.eval_node(t, node) else {
                    return Flow::Dead;
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_or_kill(t, a) {
                        Some(v) => vals.push(v),
                        None => return Flow::Dead,
                    }
                }
                let rpc = RpcId(self.next_rpc);
                self.next_rpc += 1;
                counter!("sim_rpcs_issued_total").inc();
                self.emit(t, OpKind::RpcCreate { rpc });
                let from = self.tasks[t].node;
                let copies = self.send(
                    from,
                    Message::RpcRequest {
                        rpc,
                        target,
                        func: *func,
                        args: vals,
                        caller: t,
                    },
                );
                if self.streaming() {
                    self.ctl(StreamControl::CauseFanout {
                        key: CauseKey::RpcBegin(rpc.0),
                        copies: copies as u32,
                    });
                }
                self.tasks[t].rpc_ret_local = local.clone();
                self.tasks[t].state = TaskState::BlockedRpc { rpc: rpc.0 };
                self.tasks[t].blocked_at = self.step;
                // advance pc now; the task resumes after the reply
                if let Some(f) = self.tasks[t].frames.last_mut() {
                    f.pc += 1;
                }
                Flow::Handled
            }
            Op::SocketSend { node, func, args } => {
                let Some(target) = self.eval_node(t, node) else {
                    return Flow::Dead;
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_or_kill(t, a) {
                        Some(v) => vals.push(v),
                        None => return Flow::Dead,
                    }
                }
                let msg = MsgId(self.next_msg);
                self.next_msg += 1;
                self.emit(t, OpKind::SocketSend { msg });
                let from = self.tasks[t].node;
                let copies = self.send(
                    from,
                    Message::Socket {
                        msg,
                        target,
                        func: *func,
                        args: vals,
                    },
                );
                if self.streaming() {
                    self.ctl(StreamControl::CauseFanout {
                        key: CauseKey::SocketRecv(msg.0),
                        copies: copies as u32,
                    });
                }
                Flow::Next
            }

            Op::ZkCreate {
                path,
                data,
                exclusive,
            } => {
                let (Some(p), Some(d)) = (self.eval_or_kill(t, path), self.eval_or_kill(t, data))
                else {
                    return Flow::Dead;
                };
                let p = p.key_string();
                if *exclusive && self.zk.data.contains_key(&p) {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("NodeExistsException".into()),
                        format!("create of existing znode `{p}`"),
                    );
                    return Flow::Dead;
                }
                self.zk_write(t, &p, Some(d));
                Flow::Next
            }
            Op::ZkSetData { path, data } => {
                let (Some(p), Some(d)) = (self.eval_or_kill(t, path), self.eval_or_kill(t, data))
                else {
                    return Flow::Dead;
                };
                let p = p.key_string();
                if !self.zk.data.contains_key(&p) {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("NoNodeException".into()),
                        format!("setData of absent znode `{p}`"),
                    );
                    return Flow::Dead;
                }
                self.zk_write(t, &p, Some(d));
                Flow::Next
            }
            Op::ZkDelete { path } => {
                let Some(p) = self.eval_or_kill(t, path) else {
                    return Flow::Dead;
                };
                let p = p.key_string();
                if !self.zk.data.contains_key(&p) {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("NoNodeException".into()),
                        format!("delete of absent znode `{p}`"),
                    );
                    return Flow::Dead;
                }
                self.zk_write(t, &p, None);
                Flow::Next
            }
            Op::ZkGetData { local, path } => {
                let Some(p) = self.eval_or_kill(t, path) else {
                    return Flow::Dead;
                };
                let p = p.key_string();
                let Some(v) = self.zk.data.get(&p).cloned() else {
                    self.kill(
                        t,
                        RunFailureKind::UncaughtThrow("NoNodeException".into()),
                        format!("getData of absent znode `{p}`"),
                    );
                    return Flow::Dead;
                };
                let loc = self.zk_loc(&p);
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }
            Op::ZkExists { local, path } => {
                let Some(p) = self.eval_or_kill(t, path) else {
                    return Flow::Dead;
                };
                let p = p.key_string();
                let v = Value::Bool(self.zk.data.contains_key(&p));
                let loc = self.zk_loc(&p);
                self.emit_mem(t, false, loc, &v);
                self.set_local(t, local, v);
                Flow::Next
            }

            Op::Abort { msg } => {
                self.kill(t, RunFailureKind::Abort, msg.clone());
                Flow::Dead
            }
            Op::LogFatal { msg } => {
                let task = &self.tasks[t];
                self.logs.push(LogLine {
                    level: LogLevel::Fatal,
                    node: task.node,
                    task: task.id,
                    msg: msg.clone(),
                });
                self.fail(t, RunFailureKind::FatalLog, msg.clone());
                Flow::Next
            }
            Op::LogWarn { msg } => {
                let task = &self.tasks[t];
                self.logs.push(LogLine {
                    level: LogLevel::Warn,
                    node: task.node,
                    task: task.id,
                    msg: msg.clone(),
                });
                Flow::Next
            }
            Op::Throw { kind } => {
                self.kill(
                    t,
                    RunFailureKind::UncaughtThrow(kind.clone()),
                    format!("`{kind}` thrown"),
                );
                Flow::Dead
            }

            Op::Sleep { ticks } => {
                let Some(v) = self.eval_or_kill(t, ticks) else {
                    return Flow::Dead;
                };
                let n = v.as_int().unwrap_or(0).max(0) as u64;
                self.tasks[t].state = TaskState::Sleeping {
                    until: self.step + n,
                };
                if let Some(f) = self.tasks[t].frames.last_mut() {
                    f.pc += 1;
                }
                Flow::Handled
            }
            Op::Yield | Op::Nop => Flow::Next,
        }
    }

    /// Writes (or deletes, `data = None`) a zknode: bumps the version,
    /// emits the memory write + `ZkUpdate`, and fans out watcher
    /// notifications.
    fn zk_write(&mut self, t: usize, path: &str, data: Option<Value>) {
        let version = self.zk.versions.entry(path.to_owned()).or_insert(0);
        *version += 1;
        let version = *version;
        let stored = match &data {
            Some(v) => {
                self.zk.data.insert(path.to_owned(), v.clone());
                v.clone()
            }
            None => {
                self.zk.data.remove(path);
                Value::Null
            }
        };
        let loc = self.zk_loc(path);
        self.emit_mem(t, true, loc, &stored);
        self.emit(
            t,
            OpKind::ZkUpdate {
                path: path.to_owned(),
                version,
            },
        );
        let from = self.tasks[t].node;
        let mut copies = 0usize;
        for w in self.topo.watchers.clone() {
            if path.starts_with(&w.path_prefix) {
                let handler = self
                    .cp
                    .funcs()
                    .iter()
                    .position(|f| f.name == w.handler)
                    .map(|i| FuncId(i as u32))
                    .expect("validated watcher");
                copies += self.send(
                    from,
                    Message::ZkNotify {
                        target: w.node,
                        handler,
                        path: path.to_owned(),
                        version,
                        data: stored.clone(),
                    },
                );
            }
        }
        if self.streaming() {
            self.ctl(StreamControl::CauseFanout {
                key: CauseKey::ZkPushed(path.to_owned(), version),
                copies: copies as u32,
            });
        }
    }
}

#[cfg(test)]
mod tests;
