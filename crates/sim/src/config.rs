//! Simulation configuration.

use std::collections::BTreeSet;

use dcatch_trace::TracingMode;

use crate::fault::FaultPlan;

/// Focused value-tracing configuration for the loop-synchronization
/// analysis' second run (paper §3.2.1: "we will then run the targeted
/// software again, tracing only such `r`s and all writes that touch the
/// same object").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FocusConfig {
    /// Shared object names whose accesses are traced *with values*.
    /// All other memory accesses are dropped from the focused trace.
    pub objects: BTreeSet<String>,
}

impl FocusConfig {
    /// Focus on the given object names.
    pub fn on(objects: impl IntoIterator<Item = impl Into<String>>) -> FocusConfig {
        FocusConfig {
            objects: objects.into_iter().map(Into::into).collect(),
        }
    }
}

/// Knobs of one simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Scheduler seed; same seed ⇒ identical execution and trace.
    pub seed: u64,
    /// Memory-access tracing policy (paper §3.1.1 vs Table 8 baseline).
    pub tracing: TracingMode,
    /// Whether to produce a trace at all (triggering re-runs may disable).
    pub trace_enabled: bool,
    /// Focused value-tracing (second run of loop-sync analysis).
    pub focus: Option<FocusConfig>,
    /// Global step budget; exceeding it reports a hang.
    pub max_steps: u64,
    /// Iterations a single retry-loop activation may spin before the run
    /// declares a livelock hang (the MR-3274 `getTask` loop).
    pub retry_loop_budget: u32,
    /// Deterministic fault-injection plan. The default (empty) plan is a
    /// strict no-op: the run is byte-identical to one without it.
    pub faults: FaultPlan,
    /// Memory-access trace sampling: keep every `mem_sample_rate`-th
    /// traceable memory access (1 = keep all). Sampling never touches
    /// HB-related records — the graph stays exact — and never perturbs the
    /// execution itself: the schedule, and therefore every kept record, is
    /// byte-identical to the unsampled run. The governor's tracing rung
    /// re-runs with a rate > 1 when the full trace exceeds its memory
    /// budget. Focused runs (loop-sync value tracing) ignore the rate.
    pub mem_sample_rate: u32,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 0xDCA7C4,
            tracing: TracingMode::Selective,
            trace_enabled: true,
            focus: None,
            max_steps: 2_000_000,
            retry_loop_budget: 200,
            faults: FaultPlan::default(),
            mem_sample_rate: 1,
        }
    }
}

impl SimConfig {
    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Same configuration with full (unselective) memory tracing.
    pub fn with_full_tracing(mut self) -> SimConfig {
        self.tracing = TracingMode::Full;
        self
    }

    /// Same configuration with focused value tracing enabled.
    pub fn with_focus(mut self, focus: FocusConfig) -> SimConfig {
        self.focus = Some(focus);
        self
    }

    /// Same configuration with a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> SimConfig {
        self.faults = faults;
        self
    }

    /// Same configuration with memory-access trace sampling (keep every
    /// `rate`-th access; rates below 1 are clamped to 1).
    pub fn with_mem_sample_rate(mut self, rate: u32) -> SimConfig {
        self.mem_sample_rate = rate.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_full_tracing()
            .with_focus(FocusConfig::on(["jMap"]));
        assert_eq!(c.seed, 7);
        assert_eq!(c.tracing, TracingMode::Full);
        assert!(c.focus.unwrap().objects.contains("jMap"));
    }
}
