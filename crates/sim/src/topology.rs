//! Deployment topology: nodes, entry points, event queues, RPC worker
//! pools, and ZooKeeper watchers.

use dcatch_model::{NodeId, Program, Value};

/// An event queue of a node. All queues are FIFO with a single dispatching
/// path; `consumers` is the number of handler worker threads, which
/// decides whether `Eserial` applies downstream (paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSpec {
    /// Queue name, referenced by `Enqueue` statements.
    pub name: String,
    /// Number of handler worker threads (1 = single-consumer).
    pub consumers: u32,
}

/// A ZooKeeper watcher subscription: when any zknode whose path starts
/// with `path_prefix` changes, `handler` (a `FuncKind::ZkWatcher`
/// function) runs on `node` with arguments `(path, data)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatcherSpec {
    /// Subscribing node.
    pub node: NodeId,
    /// Path prefix filter.
    pub path_prefix: String,
    /// Watcher callback function name.
    pub handler: String,
}

/// One node of the deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable role name ("AM", "NM", "HMaster"…).
    pub name: String,
    /// Entry threads started at boot: (function, args).
    pub entries: Vec<(String, Vec<Value>)>,
    /// Event queues.
    pub queues: Vec<QueueSpec>,
    /// RPC server worker threads.
    pub rpc_workers: u32,
    /// Socket message-handling worker threads (Cassandra stage /
    /// ZooKeeper cnxn threads). Long-lived, like the real systems —
    /// which is what makes the paper's socket-ablation effects (merged
    /// program order on message threads, §7.4) reproducible.
    pub socket_workers: u32,
}

/// The whole deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Topology {
    /// Nodes in id order.
    pub nodes: Vec<NodeSpec>,
    /// Watcher subscriptions.
    pub watchers: Vec<WatcherSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node and returns a builder handle for it.
    pub fn node(&mut self, name: impl Into<String>) -> NodeBuilder<'_> {
        self.nodes.push(NodeSpec {
            name: name.into(),
            entries: Vec::new(),
            queues: Vec::new(),
            rpc_workers: 2,
            socket_workers: 2,
        });
        let idx = self.nodes.len() - 1;
        NodeBuilder {
            topo: self,
            node: idx,
        }
    }

    /// The id of the node named `name`.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Registers a watcher subscription.
    pub fn watch(
        &mut self,
        node: NodeId,
        path_prefix: impl Into<String>,
        handler: impl Into<String>,
    ) -> &mut Self {
        self.watchers.push(WatcherSpec {
            node,
            path_prefix: path_prefix.into(),
            handler: handler.into(),
        });
        self
    }

    /// Checks the topology against a program: entry/watcher functions must
    /// exist with the right kinds, queue names must be unique per node.
    pub fn validate(&self, program: &Program) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for (f, _) in &n.entries {
                match program.func_by_name(f) {
                    None => problems.push(format!("node {i} entry `{f}` undefined")),
                    Some((_, func)) if func.kind != dcatch_model::FuncKind::Regular => {
                        problems.push(format!("node {i} entry `{f}` must be a Regular function"))
                    }
                    _ => {}
                }
            }
            let mut names: Vec<&str> = n.queues.iter().map(|q| q.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            if names.len() != n.queues.len() {
                problems.push(format!("node {i} has duplicate queue names"));
            }
            for q in &n.queues {
                if q.consumers == 0 {
                    problems.push(format!("node {i} queue `{}` needs ≥1 consumer", q.name));
                }
            }
        }
        for w in &self.watchers {
            if w.node.index() >= self.nodes.len() {
                problems.push(format!("watcher on unknown node {}", w.node));
            }
            match program.func_by_name(&w.handler) {
                None => problems.push(format!("watcher handler `{}` undefined", w.handler)),
                Some((_, f)) if f.kind != dcatch_model::FuncKind::ZkWatcher => problems.push(
                    format!("watcher handler `{}` must have kind ZkWatcher", w.handler),
                ),
                _ => {}
            }
        }
        problems
    }
}

/// Fluent handle for configuring one node.
#[derive(Debug)]
pub struct NodeBuilder<'a> {
    topo: &'a mut Topology,
    node: usize,
}

impl NodeBuilder<'_> {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        NodeId(self.node as u32)
    }

    /// Adds an entry thread started at boot.
    pub fn entry(&mut self, func: impl Into<String>, args: Vec<Value>) -> &mut Self {
        self.topo.nodes[self.node].entries.push((func.into(), args));
        self
    }

    /// Adds an event queue with `consumers` handler threads.
    pub fn queue(&mut self, name: impl Into<String>, consumers: u32) -> &mut Self {
        self.topo.nodes[self.node].queues.push(QueueSpec {
            name: name.into(),
            consumers,
        });
        self
    }

    /// Sets the RPC server worker-pool size.
    pub fn rpc_workers(&mut self, workers: u32) -> &mut Self {
        self.topo.nodes[self.node].rpc_workers = workers;
        self
    }

    /// Sets the socket message-handling worker-pool size.
    pub fn socket_workers(&mut self, workers: u32) -> &mut Self {
        self.topo.nodes[self.node].socket_workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_model::{FuncKind, ProgramBuilder};

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut t = Topology::new();
        let a = t.node("a").id();
        let b = t.node("b").id();
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(t.node_id("b"), Some(NodeId(1)));
        assert_eq!(t.node_id("c"), None);
    }

    #[test]
    fn validate_catches_bad_entries_and_watchers() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], FuncKind::Regular, |_| {});
        pb.func("watch", &["path", "data"], FuncKind::ZkWatcher, |_| {});
        pb.func("handler", &["e"], FuncKind::EventHandler, |_| {});
        let p = pb.build().unwrap();

        let mut t = Topology::new();
        let n = {
            let mut nb = t.node("x");
            nb.entry("main", vec![]).entry("missing", vec![]);
            nb.entry("handler", vec![]); // wrong kind
            nb.queue("q", 0); // zero consumers
            nb.id()
        };
        t.watch(n, "/r", "watch");
        t.watch(NodeId(9), "/r", "main"); // bad node + wrong kind
        let problems = t.validate(&p);
        assert_eq!(problems.len(), 5, "{problems:?}");
    }

    #[test]
    fn validate_clean() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], FuncKind::Regular, |_| {});
        let p = pb.build().unwrap();
        let mut t = Topology::new();
        t.node("x").entry("main", vec![]).queue("q", 1);
        assert!(t.validate(&p).is_empty());
    }
}
