//! Causal timeline export: renders one simulated execution as a
//! Chrome/Perfetto trace-event document (`dcatch timeline <ID>`).
//!
//! Lane mapping: one viewer *process* per simulated node (`pid` is the
//! node id plus one, named `n0`, `n1`…) and one *thread* lane per task of that node
//! (`tid = task index`, named `n0.t1`). Timestamps are **logical** — the
//! trace record's global sequence number, shown as microseconds — so the
//! document is a pure function of the trace: same seed, same bytes.
//!
//! What lands on the lanes:
//!
//! * handler executions (`Begin`/`End` of events, RPCs, sockets, watcher
//!   callbacks via their records' pairing ids), retry-loop activations
//!   (`LoopEnter`/`LoopExit`), and lock critical sections become
//!   **duration slices**;
//! * memory accesses and ZooKeeper updates become **instant markers**;
//! * every cross-task causality the HB model knows — thread fork/join,
//!   event enqueue → handler, RPC call/return, socket send → receive,
//!   zk update → watcher push — becomes a **flow arrow**, drawn between
//!   thin anchor slices at its two endpoints;
//! * fault injections (`NodeCrash`/`NodeRestart`/`RpcTimeout`) become
//!   process-scoped instant markers in the `fault` category.
//!
//! Message sends whose receipt never happened (dropped by a fault plan,
//! or still in flight at quiescence) get an anchor slice but no arrow —
//! flows are only emitted for *matched* pairs, which is what keeps every
//! flow begin paired with exactly one end.

use std::collections::BTreeMap;

use dcatch_obs::timeline::Timeline;
use dcatch_trace::{OpKind, Record, TaskId, TraceSet};

/// Width of the thin anchor slice drawn under point operations so flow
/// arrows have something to bind to in the viewer.
const ANCHOR_DUR: u64 = 1;

/// Builds the timeline of one traced run. Deterministic: the output is a
/// pure function of the trace contents.
pub fn trace_timeline(trace: &TraceSet) -> Timeline {
    let mut tl = Timeline::new();
    for task in trace.tasks() {
        tl.process(pid(task), &format!("n{}", task.node.0));
        tl.thread(pid(task), tid(task), &task.to_string());
    }

    // First pass: where does each pairing id begin/end? Keyed maps from
    // the records' own ids, filled in sequence order.
    let mut points = Points::default();
    for (i, r) in trace.records().iter().enumerate() {
        points.index(i, r);
    }

    // Second pass: emit lane content.
    let mut open: BTreeMap<(TaskId, String), u64> = BTreeMap::new();
    for r in trace.records() {
        let (p, t, ts) = at(r);
        match &r.kind {
            // ---- duration slices: Begin/End pairs within one task ----
            OpKind::EventBegin { event } => open_slice(&mut open, r, format!("e{}", event.0)),
            OpKind::EventEnd { event } => {
                close_slice(&mut tl, &mut open, r, format!("e{}", event.0), "event");
            }
            OpKind::RpcBegin { rpc } => open_slice(&mut open, r, format!("r{}", rpc.0)),
            OpKind::RpcEnd { rpc } => {
                close_slice(&mut tl, &mut open, r, format!("r{}", rpc.0), "rpc");
            }
            OpKind::LoopEnter { loop_id } => {
                open_slice(&mut open, r, format!("loop L{}", loop_id.0))
            }
            OpKind::LoopExit { loop_id } => {
                close_slice(
                    &mut tl,
                    &mut open,
                    r,
                    format!("loop L{}", loop_id.0),
                    "loop",
                );
            }
            OpKind::LockAcquire { lock } => open_slice(&mut open, r, format!("lock {lock}")),
            OpKind::LockRelease { lock } => {
                close_slice(&mut tl, &mut open, r, format!("lock {lock}"), "lock");
            }

            // ---- instant markers ----
            OpKind::MemRead { loc, .. } => tl.instant(p, t, "mem", &format!("rd {loc}"), ts),
            OpKind::MemWrite { loc, .. } => tl.instant(p, t, "mem", &format!("wr {loc}"), ts),
            OpKind::ZkUpdate { path, version } => {
                tl.instant(p, t, "zk", &format!("zu {path}@{version}"), ts);
            }
            OpKind::NodeCrash { node } => {
                tl.instant_scoped(p, t, "fault", &format!("CRASH n{}", node.0), ts, 'p');
            }
            OpKind::NodeRestart { node } => {
                tl.instant_scoped(p, t, "fault", &format!("RESTART n{}", node.0), ts, 'p');
            }
            OpKind::RpcTimeout { rpc } => {
                tl.instant_scoped(p, t, "fault", &format!("TIMEOUT r{}", rpc.0), ts, 'p');
            }

            // ---- flow anchors: thin slices at communication points ----
            OpKind::ThreadCreate { child } => anchor(&mut tl, r, &format!("spawn {child}")),
            OpKind::ThreadBegin => anchor(&mut tl, r, "begin"),
            OpKind::ThreadEnd => anchor(&mut tl, r, "end"),
            OpKind::ThreadJoin { child } => anchor(&mut tl, r, &format!("join {child}")),
            OpKind::EventCreate { event } => anchor(&mut tl, r, &format!("enq e{}", event.0)),
            OpKind::RpcCreate { rpc } => anchor(&mut tl, r, &format!("call r{}", rpc.0)),
            OpKind::RpcJoin { rpc } => anchor(&mut tl, r, &format!("ret r{}", rpc.0)),
            OpKind::SocketSend { msg } => anchor(&mut tl, r, &format!("send m{}", msg.0)),
            OpKind::SocketRecv { msg } => anchor(&mut tl, r, &format!("recv m{}", msg.0)),
            OpKind::ZkPushed { path, version } => {
                anchor(&mut tl, r, &format!("zp {path}@{version}"));
            }
        }
    }

    points.emit_flows(&mut tl, trace);
    tl
}

fn pid(task: TaskId) -> u64 {
    // the viewer treats pid 0 as "idle"; shift node ids up by one
    u64::from(task.node.0) + 1
}

fn tid(task: TaskId) -> u64 {
    u64::from(task.index)
}

/// `(pid, tid, ts)` of a record.
fn at(r: &Record) -> (u64, u64, u64) {
    (pid(r.task), tid(r.task), r.seq)
}

fn open_slice(open: &mut BTreeMap<(TaskId, String), u64>, r: &Record, key: String) {
    open.insert((r.task, key), r.seq);
}

fn close_slice(
    tl: &mut Timeline,
    open: &mut BTreeMap<(TaskId, String), u64>,
    r: &Record,
    key: String,
    cat: &str,
) {
    let (p, t, ts) = at(r);
    match open.remove(&(r.task, key.clone())) {
        Some(begin) => tl.complete(p, t, cat, &key, begin, ts.saturating_sub(begin)),
        // an End without its Begin (e.g. ablated trace): degrade to a point
        None => tl.complete(p, t, cat, &key, ts, ANCHOR_DUR),
    }
}

/// A thin anchor slice so flow arrows at this point bind to something.
fn anchor(tl: &mut Timeline, r: &Record, name: &str) {
    let (p, t, ts) = at(r);
    tl.complete(p, t, "comm", name, ts, ANCHOR_DUR);
}

/// Per-mechanism begin/end points of every cross-task causality in the
/// trace, collected in one pass and turned into flow arrows only where
/// both sides exist.
#[derive(Default)]
struct Points {
    /// spawned task → (create index, begin index)
    thread_fork: BTreeMap<TaskId, (Option<usize>, Option<usize>)>,
    /// joined task → (end index, join index)
    thread_join: BTreeMap<TaskId, (Option<usize>, Option<usize>)>,
    /// event id → (create index, begin index)
    event: BTreeMap<u64, (Option<usize>, Option<usize>)>,
    /// rpc id → (create index, begin index)
    rpc_call: BTreeMap<u64, (Option<usize>, Option<usize>)>,
    /// rpc id → (end index, join index)
    rpc_ret: BTreeMap<u64, (Option<usize>, Option<usize>)>,
    /// msg id → (send index, recv index)
    socket: BTreeMap<u64, (Option<usize>, Option<usize>)>,
    /// (path, version) → (update index, push indices) — one update may
    /// notify many watchers, each getting its own arrow
    zk: BTreeMap<(String, u64), (Option<usize>, Vec<usize>)>,
}

impl Points {
    fn index(&mut self, i: usize, r: &Record) {
        match &r.kind {
            OpKind::ThreadCreate { child } => {
                self.thread_fork.entry(*child).or_default().0 = Some(i);
            }
            OpKind::ThreadBegin => {
                self.thread_fork
                    .entry(r.task)
                    .or_default()
                    .1
                    .get_or_insert(i);
            }
            OpKind::ThreadEnd => {
                self.thread_join.entry(r.task).or_default().0 = Some(i);
            }
            OpKind::ThreadJoin { child } => {
                self.thread_join.entry(*child).or_default().1 = Some(i);
            }
            OpKind::EventCreate { event } => {
                self.event.entry(event.0).or_default().0 = Some(i);
            }
            OpKind::EventBegin { event } => {
                self.event.entry(event.0).or_default().1 = Some(i);
            }
            OpKind::RpcCreate { rpc } => {
                self.rpc_call.entry(rpc.0).or_default().0 = Some(i);
            }
            OpKind::RpcBegin { rpc } => {
                self.rpc_call.entry(rpc.0).or_default().1 = Some(i);
            }
            OpKind::RpcEnd { rpc } => {
                self.rpc_ret.entry(rpc.0).or_default().0 = Some(i);
            }
            OpKind::RpcJoin { rpc } => {
                self.rpc_ret.entry(rpc.0).or_default().1 = Some(i);
            }
            OpKind::SocketSend { msg } => {
                self.socket.entry(msg.0).or_default().0 = Some(i);
            }
            OpKind::SocketRecv { msg } => {
                self.socket.entry(msg.0).or_default().1 = Some(i);
            }
            OpKind::ZkUpdate { path, version } => {
                self.zk.entry((path.clone(), *version)).or_default().0 = Some(i);
            }
            OpKind::ZkPushed { path, version } => {
                self.zk
                    .entry((path.clone(), *version))
                    .or_default()
                    .1
                    .push(i);
            }
            _ => {}
        }
    }

    fn emit_flows(self, tl: &mut Timeline, trace: &TraceSet) {
        let recs = trace.records();
        // Arrows are emitted in a fixed mechanism order, each map in key
        // order — deterministic flow ids for identical traces.
        let mut arrow = |cat: &str, name: String, from: Option<usize>, to: Option<usize>| {
            if let (Some(a), Some(b)) = (from, to) {
                tl.flow(cat, &name, at(&recs[a]), at(&recs[b]));
            }
        };
        for (task, (c, b)) in self.thread_fork {
            arrow("thread", format!("fork {task}"), c, b);
        }
        for (task, (e, j)) in self.thread_join {
            arrow("thread", format!("join {task}"), e, j);
        }
        for (id, (c, b)) in self.event {
            arrow("event", format!("e{id}"), c, b);
        }
        for (id, (c, b)) in self.rpc_call {
            arrow("rpc", format!("r{id} call"), c, b);
        }
        for (id, (e, j)) in self.rpc_ret {
            arrow("rpc", format!("r{id} return"), e, j);
        }
        for (id, (s, r)) in self.socket {
            arrow("msg", format!("m{id}"), s, r);
        }
        for ((path, version), (update, pushes)) in self.zk {
            for push in pushes {
                arrow("zk", format!("{path}@{version}"), update, Some(push));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Topology, World};
    use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};

    /// Two nodes exchanging one socket message plus a local write.
    fn messaging_world() -> TraceSet {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &["peer"], FuncKind::Regular, |b| {
            b.write("x", Expr::val(1));
            b.socket_send(Expr::local("peer"), "ping", vec![]);
        });
        pb.func("ping", &[], FuncKind::SocketHandler, |b| {
            b.write("y", Expr::val(2));
        });
        let program = pb.build().unwrap();
        let mut topo = Topology::new();
        let peer = topo.node("peer").id();
        topo.node("a").entry("main", vec![Value::Node(peer)]);
        World::run_once(&program, &topo, SimConfig::default())
            .unwrap()
            .trace
    }

    #[test]
    fn lanes_slices_and_flows_are_emitted() {
        let trace = messaging_world();
        let tl = trace_timeline(&trace);
        let doc = tl.to_json();
        let summary = dcatch_obs::timeline::validate(&doc).expect("valid timeline");
        assert!(summary.events > 0);
        assert!(summary.flows >= 1, "the socket message draws an arrow");
        let text = doc.to_pretty();
        assert!(text.contains("wr heap:"), "memory instant present");
        assert!(text.contains("send m"), "send anchor present");
        // lane metadata names both nodes
        assert!(text.contains("\"n0\"") && text.contains("\"n1\""));
    }

    #[test]
    fn timeline_is_deterministic_per_seed() {
        let a = trace_timeline(&messaging_world()).to_json().to_pretty();
        let b = trace_timeline(&messaging_world()).to_json().to_pretty();
        assert_eq!(a, b);
    }
}
