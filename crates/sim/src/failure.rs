//! Run-time failures and logs.

use std::fmt;

use dcatch_model::{LoopId, NodeId, StmtId};
use dcatch_trace::TaskId;

/// Category of a run-time failure, matching the failure patterns of the
/// paper's Table 3 (explicit errors and hangs, local or distributed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFailureKind {
    /// `Abort` executed (system abort/exit).
    Abort,
    /// `LogFatal` executed (severe error printed).
    FatalLog,
    /// Uncatchable exception thrown by `Throw` or a ZooKeeper NoNode /
    /// NodeExists error. The payload is the exception kind.
    UncaughtThrow(String),
    /// A retry loop exceeded its iteration budget (livelock hang).
    RetryLoopHang(LoopId),
    /// Global hang: tasks blocked with nothing left to deliver or run.
    Deadlock,
    /// The global step budget was exhausted.
    StepBudgetExhausted,
}

impl fmt::Display for RunFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailureKind::Abort => write!(f, "abort"),
            RunFailureKind::FatalLog => write!(f, "fatal log"),
            RunFailureKind::UncaughtThrow(k) => write!(f, "uncaught {k}"),
            RunFailureKind::RetryLoopHang(l) => write!(f, "retry-loop hang (loop {})", l.0),
            RunFailureKind::Deadlock => write!(f, "deadlock"),
            RunFailureKind::StepBudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

/// One observed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Failure category.
    pub kind: RunFailureKind,
    /// Node the failure occurred on (for deadlocks: the first blocked node).
    pub node: NodeId,
    /// Task that failed, when attributable.
    pub task: Option<TaskId>,
    /// Statement at which the failure fired, when attributable.
    pub stmt: Option<StmtId>,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.node, self.kind, self.msg)
    }
}

/// Severity of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// `LogWarn` — handled, benign.
    Warn,
    /// `LogFatal` — severe.
    Fatal,
}

/// One log line emitted during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// Severity.
    pub level: LogLevel,
    /// Node that logged.
    pub node: NodeId,
    /// Task that logged.
    pub task: TaskId,
    /// Message text.
    pub msg: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let f = Failure {
            kind: RunFailureKind::UncaughtThrow("NoNodeException".into()),
            node: NodeId(1),
            task: None,
            stmt: None,
            msg: "delete of absent znode".into(),
        };
        assert_eq!(
            f.to_string(),
            "[n1] uncaught NoNodeException: delete of absent znode"
        );
        assert_eq!(RunFailureKind::Deadlock.to_string(), "deadlock");
        assert_eq!(
            RunFailureKind::RetryLoopHang(LoopId(3)).to_string(),
            "retry-loop hang (loop 3)"
        );
    }
}
