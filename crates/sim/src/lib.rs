//! Deterministic distributed-system simulator for DCatch-RS.
//!
//! The original DCatch instruments real JVM cloud systems (Cassandra,
//! HBase, Hadoop MapReduce, ZooKeeper). This crate is the substrate that
//! replaces them: a discrete-event interpreter for the `dcatch-model` IR
//! that provides every concurrency and communication mechanism the paper's
//! happens-before model covers (§2, Table 1):
//!
//! * **nodes** with private heaps, threads (`Spawn`/`Join`), and
//!   non-reentrant locks;
//! * **FIFO event queues** with one dispatching path and a configurable
//!   number of handler workers (single-consumer queues get `Eserial`
//!   semantics downstream);
//! * **synchronous RPC** with per-node worker pools (Hadoop IPC style);
//! * **asynchronous socket messages** (Cassandra `IVerbHandler` style);
//! * **a ZooKeeper-like coordination service** with zknodes, versions, and
//!   watcher notifications (the push-based custom-synchronization protocol
//!   of Rule-Mpush).
//!
//! Execution is *deterministic*: a seeded scheduler picks one runnable
//! task or deliverable message per step, so the same
//! ([`SimConfig::seed`], program, topology) triple always yields the same
//! trace — which is what makes DCatch's triggering module able to replay
//! and perturb interleavings exactly (§5).
//!
//! Every shared-memory access and HB-related operation is emitted as a
//! `dcatch-trace` record, subject to the selective-tracing policy of
//! §3.1.1. Failures (aborts, fatal logs, uncatchable throws, hangs) are
//! detected and reported in the [`RunResult`].
//!
//! # Example
//!
//! ```
//! use dcatch_model::{Expr, FuncKind, ProgramBuilder};
//! use dcatch_sim::{SimConfig, Topology, World};
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", &[], FuncKind::Regular, |b| {
//!     b.write("greeting", Expr::val("hello"));
//! });
//! let program = pb.build().unwrap();
//!
//! let mut topo = Topology::new();
//! topo.node("server").entry("main", vec![]);
//!
//! let result = World::run_once(&program, &topo, SimConfig::default()).unwrap();
//! assert!(result.failures.is_empty());
//! assert!(result.completed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compile;
mod config;
mod failure;
mod fault;
mod gate;
pub mod timeline;
mod topology;
mod world;

pub use compile::{CompileError, CompiledFunc, CompiledProgram, Instr, Op};
pub use config::{FocusConfig, SimConfig};
pub use failure::{Failure, LogLevel, LogLine, RunFailureKind};
pub use fault::{
    ChannelKind, CrashFault, FaultPlan, FaultPlanError, MessageAction, MessageFault, TimeoutFault,
};
pub use gate::{Gate, GateDecision, GateEvent, NoGate, StallAction};
pub use timeline::trace_timeline;
pub use topology::{NodeSpec, QueueSpec, Topology, WatcherSpec};
pub use world::{RunError, RunResult, World};
