//! Compilation of the statement tree into a flat instruction stream.
//!
//! Structured control flow (`If`, `While`) becomes branch/jump
//! instructions so the interpreter can execute exactly one instruction per
//! scheduler step with a plain program counter — the granularity at which
//! interleavings (and therefore races) are explored.

use std::fmt;

use dcatch_model::{Expr, Func, FuncId, FuncKind, LoopId, Program, Stmt, StmtId, StmtKind};

/// One flat instruction: the operation plus the source statement it came
/// from (trace records carry the statement id).
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Source statement.
    pub stmt: StmtId,
    /// Operation.
    pub op: Op,
}

/// Flattened operations. Most mirror [`StmtKind`] 1:1; control flow is
/// lowered to [`Op::LoopHead`], [`Op::Branch`], and [`Op::Jump`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // fields mirror StmtKind, documented there
pub enum Op {
    Assign {
        local: String,
        expr: Expr,
    },
    Read {
        local: String,
        object: String,
    },
    Write {
        object: String,
        value: Expr,
    },
    MapPut {
        map: String,
        key: Expr,
        value: Expr,
    },
    MapGet {
        local: String,
        map: String,
        key: Expr,
    },
    MapRemove {
        map: String,
        key: Expr,
    },
    MapContains {
        local: String,
        map: String,
        key: Expr,
    },
    ListAdd {
        list: String,
        value: Expr,
    },
    ListRemove {
        list: String,
        value: Expr,
    },
    ListIsEmpty {
        local: String,
        list: String,
    },
    ListContains {
        local: String,
        list: String,
        value: Expr,
    },

    /// Jump to `target` when `cond` is falsy (compiled `If`).
    Branch {
        cond: Expr,
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        target: usize,
    },
    /// Marks entry into a loop activation (resets its iteration counter).
    LoopEnter {
        loop_id: LoopId,
        retry: bool,
    },
    /// Evaluates the loop condition: falsy ⇒ jump to `exit` (which holds
    /// the [`Op::LoopExit`]); truthy ⇒ fall through into the body, after
    /// bumping the iteration counter against the retry budget.
    LoopHead {
        loop_id: LoopId,
        retry: bool,
        cond: Expr,
        exit: usize,
    },
    /// Marks loop exit (anchor for inferred loop-synchronization HB edges).
    LoopExit {
        loop_id: LoopId,
        retry: bool,
    },

    Call {
        local: Option<String>,
        func: FuncId,
        args: Vec<Expr>,
    },
    Return {
        expr: Option<Expr>,
    },

    Spawn {
        local: Option<String>,
        func: FuncId,
        args: Vec<Expr>,
    },
    Join {
        handle: Expr,
    },
    Enqueue {
        queue: String,
        func: FuncId,
        args: Vec<Expr>,
    },
    Lock {
        lock: String,
    },
    Unlock {
        lock: String,
    },

    RpcCall {
        local: Option<String>,
        node: Expr,
        func: FuncId,
        args: Vec<Expr>,
    },
    SocketSend {
        node: Expr,
        func: FuncId,
        args: Vec<Expr>,
    },
    ZkCreate {
        path: Expr,
        data: Expr,
        exclusive: bool,
    },
    ZkSetData {
        path: Expr,
        data: Expr,
    },
    ZkDelete {
        path: Expr,
    },
    ZkGetData {
        local: String,
        path: Expr,
    },
    ZkExists {
        local: String,
        path: Expr,
    },

    Abort {
        msg: String,
    },
    LogFatal {
        msg: String,
    },
    LogWarn {
        msg: String,
    },
    Throw {
        kind: String,
    },

    Sleep {
        ticks: Expr,
    },
    Yield,
    Nop,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunc {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Function role.
    pub kind: FuncKind,
    /// Flat instruction stream.
    pub instrs: Vec<Instr>,
}

/// A compiled program: all functions flattened, indexable by [`FuncId`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    funcs: Vec<CompiledFunc>,
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

impl CompiledProgram {
    /// Compiles every function of `program`.
    pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
        let funcs = program
            .funcs()
            .iter()
            .map(|f| compile_func(program, f))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledProgram { funcs })
    }

    /// The compiled form of `func`.
    pub fn func(&self, func: FuncId) -> &CompiledFunc {
        &self.funcs[func.index()]
    }

    /// All compiled functions.
    pub fn funcs(&self) -> &[CompiledFunc] {
        &self.funcs
    }
}

fn resolve(program: &Program, name: &str) -> Result<FuncId, CompileError> {
    program.func_id(name).ok_or_else(|| CompileError {
        message: format!("unresolved function `{name}`"),
    })
}

fn compile_func(program: &Program, f: &Func) -> Result<CompiledFunc, CompileError> {
    let mut instrs = Vec::new();
    compile_block(program, &f.body, &mut instrs)?;
    // implicit unit return at end
    let end_stmt = instrs.last().map(|i| i.stmt).unwrap_or_else(|| StmtId {
        func: program.func_id(&f.name).unwrap_or_else(|| {
            panic!(
                "function `{}` being compiled is not registered in its own program",
                f.name
            )
        }),
        idx: 0,
    });
    instrs.push(Instr {
        stmt: end_stmt,
        op: Op::Return { expr: None },
    });
    Ok(CompiledFunc {
        name: f.name.clone(),
        params: f.params.clone(),
        kind: f.kind,
        instrs,
    })
}

fn compile_block(
    program: &Program,
    block: &[Stmt],
    out: &mut Vec<Instr>,
) -> Result<(), CompileError> {
    for s in block {
        compile_stmt(program, s, out)?;
    }
    Ok(())
}

fn compile_stmt(program: &Program, s: &Stmt, out: &mut Vec<Instr>) -> Result<(), CompileError> {
    let push = |out: &mut Vec<Instr>, op: Op| {
        out.push(Instr { stmt: s.id, op });
    };
    match &s.kind {
        StmtKind::Assign { local, expr } => push(
            out,
            Op::Assign {
                local: local.clone(),
                expr: expr.clone(),
            },
        ),
        StmtKind::Read { local, object } => push(
            out,
            Op::Read {
                local: local.clone(),
                object: object.clone(),
            },
        ),
        StmtKind::Write { object, value } => push(
            out,
            Op::Write {
                object: object.clone(),
                value: value.clone(),
            },
        ),
        StmtKind::MapPut { map, key, value } => push(
            out,
            Op::MapPut {
                map: map.clone(),
                key: key.clone(),
                value: value.clone(),
            },
        ),
        StmtKind::MapGet { local, map, key } => push(
            out,
            Op::MapGet {
                local: local.clone(),
                map: map.clone(),
                key: key.clone(),
            },
        ),
        StmtKind::MapRemove { map, key } => push(
            out,
            Op::MapRemove {
                map: map.clone(),
                key: key.clone(),
            },
        ),
        StmtKind::MapContains { local, map, key } => push(
            out,
            Op::MapContains {
                local: local.clone(),
                map: map.clone(),
                key: key.clone(),
            },
        ),
        StmtKind::ListAdd { list, value } => push(
            out,
            Op::ListAdd {
                list: list.clone(),
                value: value.clone(),
            },
        ),
        StmtKind::ListRemove { list, value } => push(
            out,
            Op::ListRemove {
                list: list.clone(),
                value: value.clone(),
            },
        ),
        StmtKind::ListIsEmpty { local, list } => push(
            out,
            Op::ListIsEmpty {
                local: local.clone(),
                list: list.clone(),
            },
        ),
        StmtKind::ListContains { local, list, value } => push(
            out,
            Op::ListContains {
                local: local.clone(),
                list: list.clone(),
                value: value.clone(),
            },
        ),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let branch_at = out.len();
            push(out, Op::Nop); // placeholder for Branch
            compile_block(program, then_body, out)?;
            if else_body.is_empty() {
                let end = out.len();
                out[branch_at].op = Op::Branch {
                    cond: cond.clone(),
                    target: end,
                };
            } else {
                let jump_at = out.len();
                push(out, Op::Nop); // placeholder for Jump over else
                let else_start = out.len();
                compile_block(program, else_body, out)?;
                let end = out.len();
                out[branch_at].op = Op::Branch {
                    cond: cond.clone(),
                    target: else_start,
                };
                out[jump_at].op = Op::Jump { target: end };
            }
        }
        StmtKind::While {
            loop_id,
            cond,
            body,
            retry,
            backoff,
        } => {
            push(
                out,
                Op::LoopEnter {
                    loop_id: *loop_id,
                    retry: *retry,
                },
            );
            let head_at = out.len();
            push(out, Op::Nop); // placeholder for LoopHead
            compile_block(program, body, out)?;
            if let Some(ticks) = backoff {
                // sleep between iterations, after the body and before the
                // condition re-check
                push(
                    out,
                    Op::Sleep {
                        ticks: Expr::Const(dcatch_model::Value::Int(i64::from(*ticks))),
                    },
                );
            }
            let jump_back_at = out.len();
            push(out, Op::Jump { target: head_at });
            let exit_at = out.len();
            push(
                out,
                Op::LoopExit {
                    loop_id: *loop_id,
                    retry: *retry,
                },
            );
            out[head_at].op = Op::LoopHead {
                loop_id: *loop_id,
                retry: *retry,
                cond: cond.clone(),
                exit: exit_at,
            };
            debug_assert!(matches!(out[jump_back_at].op, Op::Jump { .. }));
        }
        StmtKind::Call { local, func, args } => {
            let func = resolve(program, func)?;
            push(
                out,
                Op::Call {
                    local: local.clone(),
                    func,
                    args: args.clone(),
                },
            );
        }
        StmtKind::Return { expr } => push(out, Op::Return { expr: expr.clone() }),
        StmtKind::Spawn { local, func, args } => {
            let func = resolve(program, func)?;
            push(
                out,
                Op::Spawn {
                    local: local.clone(),
                    func,
                    args: args.clone(),
                },
            );
        }
        StmtKind::Join { handle } => push(
            out,
            Op::Join {
                handle: handle.clone(),
            },
        ),
        StmtKind::Enqueue { queue, func, args } => {
            let func = resolve(program, func)?;
            push(
                out,
                Op::Enqueue {
                    queue: queue.clone(),
                    func,
                    args: args.clone(),
                },
            );
        }
        StmtKind::Lock { lock } => push(out, Op::Lock { lock: lock.clone() }),
        StmtKind::Unlock { lock } => push(out, Op::Unlock { lock: lock.clone() }),
        StmtKind::RpcCall {
            local,
            node,
            func,
            args,
        } => {
            let func = resolve(program, func)?;
            push(
                out,
                Op::RpcCall {
                    local: local.clone(),
                    node: node.clone(),
                    func,
                    args: args.clone(),
                },
            );
        }
        StmtKind::SocketSend { node, func, args } => {
            let func = resolve(program, func)?;
            push(
                out,
                Op::SocketSend {
                    node: node.clone(),
                    func,
                    args: args.clone(),
                },
            );
        }
        StmtKind::ZkCreate {
            path,
            data,
            exclusive,
        } => push(
            out,
            Op::ZkCreate {
                path: path.clone(),
                data: data.clone(),
                exclusive: *exclusive,
            },
        ),
        StmtKind::ZkSetData { path, data } => push(
            out,
            Op::ZkSetData {
                path: path.clone(),
                data: data.clone(),
            },
        ),
        StmtKind::ZkDelete { path } => push(out, Op::ZkDelete { path: path.clone() }),
        StmtKind::ZkGetData { local, path } => push(
            out,
            Op::ZkGetData {
                local: local.clone(),
                path: path.clone(),
            },
        ),
        StmtKind::ZkExists { local, path } => push(
            out,
            Op::ZkExists {
                local: local.clone(),
                path: path.clone(),
            },
        ),
        StmtKind::Abort { msg } => push(out, Op::Abort { msg: msg.clone() }),
        StmtKind::LogFatal { msg } => push(out, Op::LogFatal { msg: msg.clone() }),
        StmtKind::LogWarn { msg } => push(out, Op::LogWarn { msg: msg.clone() }),
        StmtKind::Throw { kind } => push(out, Op::Throw { kind: kind.clone() }),
        StmtKind::Sleep { ticks } => push(
            out,
            Op::Sleep {
                ticks: ticks.clone(),
            },
        ),
        StmtKind::Yield => push(out, Op::Yield),
        StmtKind::Nop => push(out, Op::Nop),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_model::ProgramBuilder;

    #[test]
    fn if_else_targets_are_correct() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", &[], FuncKind::Regular, |b| {
            b.if_else(
                Expr::local("c"),
                |b| {
                    b.assign("x", Expr::val(1));
                },
                |b| {
                    b.assign("x", Expr::val(2));
                },
            );
            b.assign("y", Expr::val(3));
        });
        let p = pb.build().unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let f = cp.func(p.func_id("f").unwrap());
        // 0: Branch(c, else_start) 1: x=1 2: Jump(end) 3: x=2 4: y=3 5: Return
        match &f.instrs[0].op {
            Op::Branch { target, .. } => assert_eq!(*target, 3),
            other => panic!("expected branch, got {other:?}"),
        }
        match &f.instrs[2].op {
            Op::Jump { target } => assert_eq!(*target, 4),
            other => panic!("expected jump, got {other:?}"),
        }
        assert!(matches!(f.instrs[5].op, Op::Return { .. }));
    }

    #[test]
    fn while_loop_structure() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", &[], FuncKind::Regular, |b| {
            b.retry_while(Expr::local("go"), |b| {
                b.yield_();
            });
        });
        let p = pb.build().unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let f = cp.func(p.func_id("f").unwrap());
        // 0: LoopEnter 1: LoopHead(exit=4) 2: Yield 3: Jump(1) 4: LoopExit 5: Return
        assert!(matches!(f.instrs[0].op, Op::LoopEnter { retry: true, .. }));
        match &f.instrs[1].op {
            Op::LoopHead { exit, .. } => assert_eq!(*exit, 4),
            other => panic!("expected loop head, got {other:?}"),
        }
        assert!(matches!(f.instrs[3].op, Op::Jump { target: 1 }));
        assert!(matches!(f.instrs[4].op, Op::LoopExit { .. }));
    }

    #[test]
    fn empty_function_still_returns() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", &[], FuncKind::Regular, |_| {});
        let p = pb.build().unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let f = cp.func(p.func_id("f").unwrap());
        assert_eq!(f.instrs.len(), 1);
        assert!(matches!(f.instrs[0].op, Op::Return { expr: None }));
    }
}
