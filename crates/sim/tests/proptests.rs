//! Property tests for the simulator: arbitrary (well-formed) programs
//! never crash the interpreter, runs are deterministic per seed, and the
//! emitted traces satisfy structural invariants.
//!
//! Generators are driven by the in-repo deterministic PRNG
//! (`dcatch_obs::SmallRng`); each test runs a fixed number of seeded
//! cases and reports the failing case seed on assert.

use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder, Value};
use dcatch_obs::SmallRng;
use dcatch_sim::{ChannelKind, FaultPlan, MessageAction, MessageFault, SimConfig, Topology, World};
use dcatch_trace::OpKind;

/// A miniature random-program AST that only produces terminating,
/// well-formed IR: bounded loops, existing call targets, matched
/// lock/unlock.
#[derive(Debug, Clone)]
enum Gen {
    Write(u8, i64),
    Read(u8),
    MapPut(u8, u8, i64),
    MapGet(u8, u8),
    ListAdd(u8, i64),
    If(i64, Vec<Gen>),
    BoundedLoop(u8, Vec<Gen>),
    CallHelper(u8),
    SpawnWorker(u8),
    Enqueue(u8),
    Rpc(u8),
    Send(u8),
    Critical(u8, Vec<Gen>),
    Sleep(u8),
    Warn,
    Yield,
}

fn small_val(rng: &mut SmallRng) -> i64 {
    rng.gen_range_i64(-5, 5)
}

fn arb_leaf(rng: &mut SmallRng) -> Gen {
    match rng.gen_range(13) {
        0 => Gen::Write(rng.gen_range(4) as u8, small_val(rng)),
        1 => Gen::Read(rng.gen_range(4) as u8),
        2 => Gen::MapPut(
            rng.gen_range(3) as u8,
            rng.gen_range(3) as u8,
            small_val(rng),
        ),
        3 => Gen::MapGet(rng.gen_range(3) as u8, rng.gen_range(3) as u8),
        4 => Gen::ListAdd(rng.gen_range(3) as u8, small_val(rng)),
        5 => Gen::CallHelper(rng.gen_range(3) as u8),
        6 => Gen::SpawnWorker(rng.gen_range(3) as u8),
        7 => Gen::Enqueue(rng.gen_range(3) as u8),
        8 => Gen::Rpc(rng.gen_range(3) as u8),
        9 => Gen::Send(rng.gen_range(3) as u8),
        10 => Gen::Sleep(rng.gen_range(20) as u8),
        11 => Gen::Warn,
        _ => Gen::Yield,
    }
}

fn arb_gen(rng: &mut SmallRng, depth: u32) -> Gen {
    // at depth 0 only leaves; otherwise mix in the three recursive forms
    if depth == 0 || rng.gen_range(4) != 0 {
        return arb_leaf(rng);
    }
    match rng.gen_range(3) {
        0 => {
            let body = arb_body(rng, depth - 1, 4);
            Gen::If(rng.gen_range_i64(-2, 2), body)
        }
        1 => {
            let body = arb_body(rng, depth - 1, 3);
            Gen::BoundedLoop(1 + rng.gen_range(3) as u8, body)
        }
        _ => {
            let body = arb_body(rng, depth - 1, 3);
            Gen::Critical(rng.gen_range(2) as u8, body)
        }
    }
}

fn arb_body(rng: &mut SmallRng, depth: u32, max_len: usize) -> Vec<Gen> {
    let len = rng.gen_range(max_len);
    (0..len).map(|_| arb_gen(rng, depth)).collect()
}

fn arb_ops(rng: &mut SmallRng, depth: u32, max_len: usize) -> Vec<Gen> {
    let len = rng.gen_range(max_len);
    (0..len).map(|_| arb_gen(rng, depth)).collect()
}

fn emit(b: &mut dcatch_model::BlockBuilder<'_>, g: &Gen, fresh: &mut u32) {
    let local = |fresh: &mut u32| {
        *fresh += 1;
        format!("l{fresh}")
    };
    match g {
        Gen::Write(o, v) => {
            b.write(&format!("cell{o}"), Expr::val(*v));
        }
        Gen::Read(o) => {
            let l = local(fresh);
            b.read(&l, &format!("cell{o}"));
        }
        Gen::MapPut(m, k, v) => {
            b.map_put(&format!("map{m}"), Expr::val(i64::from(*k)), Expr::val(*v));
        }
        Gen::MapGet(m, k) => {
            let l = local(fresh);
            b.map_get(&l, &format!("map{m}"), Expr::val(i64::from(*k)));
        }
        Gen::ListAdd(l0, v) => {
            b.list_add(&format!("list{l0}"), Expr::val(*v));
        }
        Gen::If(c, body) => {
            b.if_(Expr::val(*c).gt(Expr::val(0)), |b| {
                for g in body {
                    emit(b, g, fresh);
                }
            });
        }
        Gen::BoundedLoop(n, body) => {
            let i = local(fresh);
            b.assign(&i, Expr::val(0));
            b.while_(Expr::local(&i).lt(Expr::val(i64::from(*n))), |b| {
                for g in body {
                    emit(b, g, fresh);
                }
                b.assign(&i, Expr::local(&i).add(Expr::val(1)));
            });
        }
        Gen::CallHelper(h) => {
            b.call_void(&format!("helper{h}"), vec![]);
        }
        Gen::SpawnWorker(w) => {
            b.spawn_detached(&format!("worker{w}"), vec![]);
        }
        Gen::Enqueue(h) => {
            b.enqueue("q", &format!("handler{h}"), vec![]);
        }
        Gen::Rpc(r) => {
            let l = local(fresh);
            b.rpc(&l, Expr::local("peer"), &format!("rpc{r}"), vec![]);
        }
        Gen::Send(s) => {
            b.socket_send(Expr::local("peer"), &format!("msg{s}"), vec![]);
        }
        Gen::Critical(l0, body) => {
            b.lock(&format!("lk{l0}"));
            for g in body {
                emit(b, g, fresh);
            }
            b.unlock(&format!("lk{l0}"));
        }
        Gen::Sleep(t) => {
            b.sleep(Expr::val(i64::from(*t)));
        }
        Gen::Warn => {
            b.log_warn("noise");
        }
        Gen::Yield => {
            b.yield_();
        }
    }
}

/// Builds a two-node program hosting the generated main body plus the
/// fixed set of helpers/handlers the generator can reference. `Critical`
/// blocks never nest the same lock (the generator would deadlock itself),
/// so strip nested criticals of the same id.
fn build_program(main_ops: &[Gen]) -> (Program, Topology) {
    let mut pb = ProgramBuilder::new();
    let mut fresh = 0u32;
    pb.func("main", &["peer"], FuncKind::Regular, |b| {
        let mut held = Vec::new();
        for g in main_ops {
            emit_no_reentrant(b, g, &mut fresh, &mut held);
        }
    });
    for h in 0..3 {
        pb.func(format!("helper{h}"), &[], FuncKind::Regular, |b| {
            b.write(&format!("helper_cell{h}"), Expr::val(i64::from(h)));
        });
        pb.func(format!("worker{h}"), &[], FuncKind::Regular, |b| {
            b.write(&format!("worker_cell{h}"), Expr::val(i64::from(h)));
        });
        pb.func(format!("handler{h}"), &[], FuncKind::EventHandler, |b| {
            b.write(&format!("event_cell{h}"), Expr::val(i64::from(h)));
        });
        pb.func(format!("rpc{h}"), &[], FuncKind::RpcHandler, |b| {
            b.read("x", &format!("rpc_cell{h}"));
            b.ret(Expr::local("x"));
        });
        pb.func(format!("msg{h}"), &[], FuncKind::SocketHandler, |b| {
            b.write(&format!("msg_cell{h}"), Expr::val(i64::from(h)));
        });
    }
    let program = pb.build().expect("generated program must build");
    let mut topo = Topology::new();
    let peer = {
        let mut nb = topo.node("peer");
        nb.queue("q", 1);
        nb.id()
    };
    {
        let mut nb = topo.node("host");
        nb.queue("q", 1);
        nb.entry("main", vec![Value::Node(peer)]);
    }
    (program, topo)
}

/// Like `emit`, but skips `Critical` sections whose lock is already held
/// (the IR's locks are non-reentrant).
fn emit_no_reentrant(
    b: &mut dcatch_model::BlockBuilder<'_>,
    g: &Gen,
    fresh: &mut u32,
    held: &mut Vec<u8>,
) {
    match g {
        Gen::Critical(l0, body) => {
            if held.contains(l0) {
                for g in body {
                    emit_no_reentrant(b, g, fresh, held);
                }
            } else {
                held.push(*l0);
                b.lock(&format!("lk{l0}"));
                for g in body {
                    emit_no_reentrant(b, g, fresh, held);
                }
                b.unlock(&format!("lk{l0}"));
                held.pop();
            }
        }
        Gen::If(c, body) => {
            b.if_(Expr::val(*c).gt(Expr::val(0)), |b| {
                for g in body {
                    emit_no_reentrant(b, g, fresh, held);
                }
            });
        }
        Gen::BoundedLoop(n, body) => {
            *fresh += 1;
            let i = format!("l{fresh}");
            b.assign(&i, Expr::val(0));
            b.while_(Expr::local(&i).lt(Expr::val(i64::from(*n))), |b| {
                for g in body {
                    emit_no_reentrant(b, g, fresh, held);
                }
                b.assign(&i, Expr::local(&i).add(Expr::val(1)));
            });
        }
        other => emit(b, other, fresh),
    }
}

/// Arbitrary generated programs run to completion without failures:
/// the interpreter has no panics and the generated IR is failure-free
/// by construction.
#[test]
fn generated_programs_run_cleanly() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ case);
        let ops = arb_ops(&mut rng, 3, 12);
        let seed = rng.next_u64() % 1000;
        let (program, topo) = build_program(&ops);
        let run = World::run_once(&program, &topo, SimConfig::default().with_seed(seed))
            .expect("run starts");
        assert!(run.failures.is_empty(), "case {case}: {:?}", run.failures);
        assert!(run.completed, "case {case}");
    }
}

/// Same seed ⇒ byte-identical trace; sequence numbers strictly increase.
#[test]
fn runs_are_deterministic_and_seq_ordered() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xDE7E12 ^ case);
        let ops = arb_ops(&mut rng, 2, 10);
        let seed = rng.next_u64() % 1000;
        let (program, topo) = build_program(&ops);
        let cfg = SimConfig::default().with_seed(seed).with_full_tracing();
        let a = World::run_once(&program, &topo, cfg.clone()).unwrap();
        let b = World::run_once(&program, &topo, cfg).unwrap();
        assert_eq!(a.trace.to_lines(), b.trace.to_lines(), "case {case}");
        let mut last = None;
        for r in a.trace.records() {
            if let Some(prev) = last {
                assert!(r.seq > prev, "case {case}: seq not increasing");
            }
            last = Some(r.seq);
        }
    }
}

/// An empty fault plan is a strict no-op: for arbitrary programs, running
/// with the default config, with an explicitly empty plan, and with a
/// plan whose entries can never match (wrong endpoints) all produce
/// byte-identical traces. This is the guarantee that keeps the paper's
/// detection tables unchanged when the engine is idle.
#[test]
fn empty_fault_plan_leaves_traces_byte_identical() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xFA017 ^ case);
        let ops = arb_ops(&mut rng, 3, 12);
        let seed = rng.next_u64() % 1000;
        let (program, topo) = build_program(&ops);
        let base_cfg = SimConfig::default().with_seed(seed).with_full_tracing();

        let baseline = World::run_once(&program, &topo, base_cfg.clone()).unwrap();
        let empty = World::run_once(
            &program,
            &topo,
            base_cfg.clone().with_faults(FaultPlan::default()),
        )
        .unwrap();
        // node 99 does not exist, so no message ever matches and the
        // crash/timeout machinery never wakes
        let unmatched_plan = FaultPlan::default().with_message(
            MessageFault::new(ChannelKind::Any, MessageAction::Drop)
                .from_node(dcatch_model::NodeId(99)),
        );
        let unmatched =
            World::run_once(&program, &topo, base_cfg.with_faults(unmatched_plan)).unwrap();

        let want = baseline.trace.to_lines();
        assert_eq!(want, empty.trace.to_lines(), "case {case}: empty plan");
        assert_eq!(
            want,
            unmatched.trace.to_lines(),
            "case {case}: unmatched plan"
        );
        assert_eq!(baseline.faults_injected, 0, "case {case}");
        assert_eq!(empty.faults_injected, 0, "case {case}");
        assert_eq!(unmatched.faults_injected, 0, "case {case}");
    }
}

/// Faulted runs of arbitrary programs never panic the interpreter and
/// always end classified: either the run completes, or it reports at
/// least one failure.
#[test]
fn faulted_runs_never_wedge_silently() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xBADF ^ case);
        let ops = arb_ops(&mut rng, 3, 12);
        let seed = rng.next_u64() % 1000;
        let (program, topo) = build_program(&ops);
        // one plan per fault class, rotating with the case number
        let plan = match case % 4 {
            0 => FaultPlan::default().with_message(MessageFault::new(
                ChannelKind::Any,
                MessageAction::Delay(1 + case % 5),
            )),
            1 => FaultPlan::default().with_message(
                MessageFault::new(ChannelKind::Any, MessageAction::Drop).nth(1 + case % 3),
            ),
            2 => FaultPlan::default().with_crash(
                dcatch_model::NodeId(1),
                1 + case % 30,
                (case % 2 == 0).then_some(5),
            ),
            _ => FaultPlan::default().with_rpc_timeout(None, 1 + case % 8),
        };
        let cfg = SimConfig::default().with_seed(seed).with_faults(plan);
        let run = World::run_once(&program, &topo, cfg).unwrap();
        assert!(
            run.completed || !run.failures.is_empty(),
            "case {case}: wedged without a classified failure"
        );
    }
}

/// Structural trace invariants: matched create/begin pairs, balanced
/// locks per task, and begin-before-end for every handler instance.
#[test]
fn trace_structure_is_well_formed() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x57A7 ^ case);
        let ops = arb_ops(&mut rng, 2, 10);
        let seed = rng.next_u64() % 500;
        let (program, topo) = build_program(&ops);
        let cfg = SimConfig::default().with_seed(seed).with_full_tracing();
        let run = World::run_once(&program, &topo, cfg).unwrap();
        let trace = run.trace;

        use std::collections::BTreeMap;
        let mut event_create = BTreeMap::new();
        let mut rpc_create = BTreeMap::new();
        let mut socket_send = BTreeMap::new();
        let mut lock_depth: BTreeMap<_, i64> = BTreeMap::new();
        for r in trace.records() {
            match &r.kind {
                OpKind::EventCreate { event } => {
                    event_create.insert(*event, r.seq);
                }
                OpKind::EventBegin { event } => {
                    let c = event_create.get(event).expect("begin has create");
                    assert!(*c < r.seq, "case {case}");
                }
                OpKind::RpcCreate { rpc } => {
                    rpc_create.insert(*rpc, r.seq);
                }
                OpKind::RpcBegin { rpc } => {
                    let c = rpc_create.get(rpc).expect("rpc begin has create");
                    assert!(*c < r.seq, "case {case}");
                }
                OpKind::SocketSend { msg } => {
                    socket_send.insert(*msg, r.seq);
                }
                OpKind::SocketRecv { msg } => {
                    let c = socket_send.get(msg).expect("recv has send");
                    assert!(*c < r.seq, "case {case}");
                }
                OpKind::LockAcquire { lock } => {
                    *lock_depth.entry((r.task, lock.clone())).or_insert(0) += 1;
                }
                OpKind::LockRelease { lock } => {
                    let d = lock_depth.entry((r.task, lock.clone())).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "case {case}: release without acquire");
                }
                _ => {}
            }
        }
        for ((task, lock), d) in lock_depth {
            assert_eq!(d, 0, "case {case}: unbalanced lock {lock:?} on {task}");
        }
    }
}
