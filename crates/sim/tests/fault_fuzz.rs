//! Seeded mutation fuzzing of the `FaultPlan` text parser.
//!
//! Starting from well-formed plans, each case applies a small stack of
//! random byte- and token-level mutations and feeds the result to
//! `FaultPlan::parse`. The parser must classify every input — `Ok` for
//! plans that survived mutation intact, a structured `FaultPlanError`
//! otherwise — and must never panic: each parse runs under
//! `catch_unwind` so a crash is a test failure, not a process abort.
//! `DCATCH_SOAK=1` widens the sweep.

use dcatch_model::NodeId;
use dcatch_obs::rng::SmallRng;
use dcatch_sim::{ChannelKind, FaultPlan, MessageAction, MessageFault};

/// Seed corpus: every directive form the grammar supports.
fn corpus() -> Vec<String> {
    let built = FaultPlan::default()
        .with_message(
            MessageFault::new(ChannelKind::Socket, MessageAction::Drop)
                .nth(2)
                .to_node(NodeId(1)),
        )
        .with_message(
            MessageFault::new(ChannelKind::RpcRequest, MessageAction::Delay(40))
                .from_node(NodeId(0)),
        )
        .with_message(MessageFault::new(
            ChannelKind::ZkNotify,
            MessageAction::Duplicate,
        ))
        .with_crash(NodeId(1), 150, Some(80))
        .with_rpc_timeout(Some(NodeId(0)), 100)
        .with_panic_at(10);
    vec![
        built.to_text(),
        "# comment only\n\n".to_owned(),
        "drop any\ndelay reply steps=7 nth=1\ndup socket to=3\ncrash node=0 at=5\n".to_owned(),
        "timeout after=300\npanic at=1\n".to_owned(),
    ]
}

/// One random mutation of `text`: byte flip, byte insertion, byte
/// deletion, token swap, line duplication, or line truncation.
fn mutate(rng: &mut SmallRng, text: &str) -> String {
    let mut bytes: Vec<u8> = text.as_bytes().to_vec();
    match rng.gen_range(6) {
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(bytes.len());
            bytes[i] = rng.next_u64() as u8;
        }
        1 => {
            let i = rng.gen_range(bytes.len() + 1);
            // bias toward structure-relevant bytes
            let pool = b"=# \n\tdropcrash0123456789\xff";
            bytes.insert(i, pool[rng.gen_range(pool.len())]);
        }
        2 if !bytes.is_empty() => {
            let i = rng.gen_range(bytes.len());
            bytes.remove(i);
        }
        3 => {
            // swap two whitespace-separated tokens of a random line
            let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
            if !lines.is_empty() {
                let li = rng.gen_range(lines.len());
                let mut toks: Vec<&str> = lines[li].split_whitespace().collect();
                if toks.len() >= 2 {
                    let a = rng.gen_range(toks.len());
                    let b = rng.gen_range(toks.len());
                    toks.swap(a, b);
                    lines[li] = toks.join(" ");
                }
            }
            return lines.join("\n");
        }
        4 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let li = rng.gen_range(lines.len());
                lines.push(lines[li]);
            }
            return lines.join("\n");
        }
        _ => {
            if !bytes.is_empty() {
                bytes.truncate(rng.gen_range(bytes.len()));
            }
        }
    }
    // parse takes &str; keep arbitrary bytes by lossy round-trip (the CLI
    // reads plans with read_to_string, which performs the same filtering)
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutated_plans_never_panic_the_parser() {
    let cases: u64 = if std::env::var("DCATCH_SOAK").as_deref() == Ok("1") {
        4_000
    } else {
        600
    };
    let corpus = corpus();
    for seed in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0xFA01_7000 ^ seed);
        let mut text = corpus[rng.gen_range(corpus.len())].clone();
        for _ in 0..=rng.gen_range(4) {
            text = mutate(&mut rng, &text);
        }
        let shown = text.clone();
        let result = std::panic::catch_unwind(move || FaultPlan::parse(&text).map(|_| ()));
        match result {
            Ok(Ok(())) | Ok(Err(_)) => {}
            Err(_) => panic!("parser panicked on seed {seed}: {shown:?}"),
        }
    }
}

#[test]
fn rejected_plans_point_at_a_real_location() {
    // every parse error must carry a plausible (line, column) pair the
    // caller can surface: 1-based, and within the input's line count
    let cases = 400;
    let corpus = corpus();
    for seed in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0xC01_0FF ^ seed);
        let mut text = corpus[rng.gen_range(corpus.len())].clone();
        for _ in 0..=rng.gen_range(3) {
            text = mutate(&mut rng, &text);
        }
        if let Err(e) = FaultPlan::parse(&text) {
            let lines = text.lines().count().max(1);
            assert!(
                e.line >= 1 && e.line <= lines,
                "seed {seed}: line {} of {lines}",
                e.line
            );
            assert!(e.column >= 1, "seed {seed}: column 0");
            assert!(!e.message.is_empty(), "seed {seed}: empty message");
        }
    }
}
