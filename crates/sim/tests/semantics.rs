//! Targeted interpreter-semantics tests: failure paths, ZooKeeper edge
//! cases, worker pools, gate interaction, and scheduler corner cases.

use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder, Value};
use dcatch_sim::{RunFailureKind, SimConfig, Topology, World};
use dcatch_trace::OpKind;

fn single_node(_p: &Program, entry: &str) -> Topology {
    let mut topo = Topology::new();
    topo.node("n").entry(entry, vec![]).queue("q", 1);
    topo
}

fn run_entry(body: impl FnOnce(&mut dcatch_model::BlockBuilder<'_>)) -> dcatch_sim::RunResult {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, body);
    pb.func("handler", &["v"], FuncKind::EventHandler, |b| {
        b.write("handled", Expr::local("v"));
    });
    let p = pb.build().unwrap();
    let topo = single_node(&p, "main");
    World::run_once(&p, &topo, SimConfig::default()).unwrap()
}

// ---- ZooKeeper edge cases ---------------------------------------------------

#[test]
fn zk_exclusive_create_of_existing_node_throws() {
    let r = run_entry(|b| {
        b.zk_create(Expr::val("/p"), Expr::val(1));
        b.zk_create_exclusive(Expr::val("/p"), Expr::val(2));
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "NodeExistsException"
    ));
}

#[test]
fn zk_nonexclusive_create_overwrites_silently() {
    let r = run_entry(|b| {
        b.zk_create(Expr::val("/p"), Expr::val(1));
        b.zk_create(Expr::val("/p"), Expr::val(2));
        b.zk_get_data("d", Expr::val("/p"));
        b.if_(Expr::local("d").ne(Expr::val(2)), |b| {
            b.abort("overwrite lost");
        });
    });
    assert!(r.failures.is_empty(), "{:?}", r.failures);
}

#[test]
fn zk_set_data_of_absent_node_throws() {
    let r = run_entry(|b| {
        b.zk_set_data(Expr::val("/absent"), Expr::val(1));
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "NoNodeException"
    ));
}

#[test]
fn zk_get_data_of_absent_node_throws_but_exists_does_not() {
    let r = run_entry(|b| {
        b.zk_exists("e", Expr::val("/absent"));
        b.if_(Expr::local("e"), |b| {
            b.abort("phantom znode");
        });
        b.zk_get_data("d", Expr::val("/absent"));
    });
    assert_eq!(r.failures.len(), 1);
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "NoNodeException"
    ));
}

#[test]
fn zk_versions_increase_across_recreation() {
    // delete + recreate must produce distinct versions so Mpush pairs
    // updates with the right notifications
    let r = run_entry(|b| {
        b.zk_create(Expr::val("/v"), Expr::val(1));
        b.zk_delete(Expr::val("/v"));
        b.zk_create(Expr::val("/v"), Expr::val(2));
    });
    let versions: Vec<u64> = r
        .trace
        .records()
        .iter()
        .filter_map(|rec| match &rec.kind {
            OpKind::ZkUpdate { version, .. } => Some(*version),
            _ => None,
        })
        .collect();
    assert_eq!(versions, vec![1, 2, 3]);
}

// ---- type and evaluation failures ------------------------------------------

#[test]
fn map_op_on_cell_is_a_class_cast_failure() {
    let r = run_entry(|b| {
        b.write("x", Expr::val(1));
        b.map_put("x", Expr::val("k"), Expr::val(2));
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "ClassCastException"
    ));
}

#[test]
fn undefined_local_kills_the_task() {
    let r = run_entry(|b| {
        b.assign("x", Expr::local("never_defined"));
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "EvalError"
    ));
}

#[test]
fn arithmetic_on_strings_fails() {
    let r = run_entry(|b| {
        b.assign("x", Expr::val("a").add(Expr::val(1)));
    });
    assert_eq!(r.failures.len(), 1);
}

#[test]
fn unlock_of_unheld_lock_fails() {
    let r = run_entry(|b| {
        b.unlock("m");
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "IllegalMonitorState"
    ));
}

#[test]
fn reentrant_lock_acquisition_fails() {
    let r = run_entry(|b| {
        b.lock("m");
        b.lock("m");
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "IllegalMonitorState"
    ));
}

#[test]
fn enqueue_on_undeclared_queue_fails() {
    let r = run_entry(|b| {
        b.enqueue("no_such_queue", "handler", vec![Expr::val(1)]);
    });
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "NoSuchQueueException"
    ));
}

#[test]
fn rpc_to_non_node_value_fails() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.rpc("x", Expr::val(7), "serve", vec![]);
    });
    pb.func("serve", &[], FuncKind::RpcHandler, |b| {
        b.ret(Expr::val(1));
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let r = World::run_once(&p, &topo, SimConfig::default()).unwrap();
    assert!(matches!(
        &r.failures[0].kind,
        RunFailureKind::UncaughtThrow(k) if k == "UnknownHostException"
    ));
}

// ---- failure semantics -------------------------------------------------------

#[test]
fn killed_task_releases_its_locks() {
    // t1 takes the lock and throws; t2 must still acquire it
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn("a", "crasher", vec![]);
        b.join(Expr::local("a"));
        b.lock("m");
        b.write("alive", Expr::val(true));
        b.unlock("m");
    });
    pb.func("crasher", &[], FuncKind::Regular, |b| {
        b.lock("m");
        b.throw("Boom");
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let r = World::run_once(&p, &topo, SimConfig::default()).unwrap();
    assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    assert!(r.completed, "main must finish after the crasher dies");
}

#[test]
fn join_on_killed_thread_succeeds() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn("a", "crasher", vec![]);
        b.join(Expr::local("a"));
        b.write("after_join", Expr::val(true));
    });
    pb.func("crasher", &[], FuncKind::Regular, |b| {
        b.abort("dead");
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let r = World::run_once(&p, &topo, SimConfig::default()).unwrap();
    assert!(r.completed);
    assert_eq!(r.failures.len(), 1);
}

#[test]
fn rpc_handler_crash_deadlocks_the_caller() {
    // the handler dies, no reply is ever sent: the caller blocks forever —
    // the "distributed hang via crashed server" pattern
    let mut pb = ProgramBuilder::new();
    pb.func("main", &["peer"], FuncKind::Regular, |b| {
        b.rpc("x", Expr::local("peer"), "die", vec![]);
    });
    pb.func("die", &[], FuncKind::RpcHandler, |b| {
        b.throw("ServerError");
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    let peer = topo.node("server").id();
    topo.node("client").entry("main", vec![Value::Node(peer)]);
    let r = World::run_once(&p, &topo, SimConfig::default()).unwrap();
    assert!(r
        .failures
        .iter()
        .any(|f| matches!(f.kind, RunFailureKind::Deadlock)));
    assert!(!r.completed);
}

#[test]
fn step_budget_exhaustion_is_reported() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        // non-retry spin loop: no iteration budget applies
        b.while_(Expr::val(true), |b| {
            b.yield_();
        });
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let cfg = SimConfig {
        max_steps: 500,
        ..SimConfig::default()
    };
    let r = World::run_once(&p, &topo, cfg).unwrap();
    assert!(r
        .failures
        .iter()
        .any(|f| matches!(f.kind, RunFailureKind::StepBudgetExhausted)));
}

// ---- worker pools -------------------------------------------------------------

#[test]
fn single_socket_worker_serializes_message_handling() {
    // with one socket worker, two handlers can never interleave: the
    // read-modify-write below stays consistent on every seed
    let mut pb = ProgramBuilder::new();
    pb.func("main", &["peer"], FuncKind::Regular, |b| {
        b.socket_send(Expr::local("peer"), "bump", vec![]);
        b.socket_send(Expr::local("peer"), "bump", vec![]);
    });
    pb.func("bump", &[], FuncKind::SocketHandler, |b| {
        b.read("c", "counter");
        b.yield_();
        b.if_else(
            Expr::local("c").eq(Expr::null()),
            |b| {
                b.write("counter", Expr::val(1));
            },
            |b| {
                b.write("counter", Expr::local("c").add(Expr::val(1)));
            },
        );
    });
    pb.func("checker", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(300));
        b.read("c", "counter");
        b.if_(Expr::local("c").ne(Expr::val(2)), |b| {
            b.abort("lost update on single-worker pool");
        });
    });
    let p = pb.build().unwrap();
    for seed in 0..25 {
        let mut topo = Topology::new();
        let peer = {
            let mut nb = topo.node("server");
            nb.socket_workers(1);
            nb.entry("checker", vec![]);
            nb.id()
        };
        topo.node("client").entry("main", vec![Value::Node(peer)]);
        let r = World::run_once(&p, &topo, SimConfig::default().with_seed(seed)).unwrap();
        assert!(r.failures.is_empty(), "seed {seed}: {:?}", r.failures);
    }
}

#[test]
fn rpc_worker_pool_of_one_serializes_rpc_handlers() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &["peer"], FuncKind::Regular, |b| {
        b.spawn_detached("caller", vec![Expr::local("peer")]);
        b.spawn_detached("caller", vec![Expr::local("peer")]);
    });
    pb.func("caller", &["peer"], FuncKind::Regular, |b| {
        b.rpc("x", Expr::local("peer"), "bump2", vec![]);
    });
    pb.func("bump2", &[], FuncKind::RpcHandler, |b| {
        b.read("c", "rpc_counter");
        b.yield_();
        b.if_else(
            Expr::local("c").eq(Expr::null()),
            |b| {
                b.write("rpc_counter", Expr::val(1));
            },
            |b| {
                b.write("rpc_counter", Expr::local("c").add(Expr::val(1)));
            },
        );
        b.ret(Expr::val(true));
    });
    pb.func("checker2", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(300));
        b.read("c", "rpc_counter");
        b.if_(Expr::local("c").ne(Expr::val(2)), |b| {
            b.abort("lost update on single rpc worker");
        });
    });
    let p = pb.build().unwrap();
    for seed in 0..25 {
        let mut topo = Topology::new();
        let peer = {
            let mut nb = topo.node("server");
            nb.rpc_workers(1);
            nb.entry("checker2", vec![]);
            nb.id()
        };
        topo.node("client").entry("main", vec![Value::Node(peer)]);
        let r = World::run_once(&p, &topo, SimConfig::default().with_seed(seed)).unwrap();
        assert!(r.failures.is_empty(), "seed {seed}: {:?}", r.failures);
    }
}

// ---- heap isolation -----------------------------------------------------------

#[test]
fn node_heaps_are_isolated() {
    // the same object name on two nodes refers to different storage
    let mut pb = ProgramBuilder::new();
    pb.func("writer", &["peer"], FuncKind::Regular, |b| {
        b.write("shared_name", Expr::val("mine"));
        b.rpc("remote", Expr::local("peer"), "read_it", vec![]);
        b.if_(Expr::local("remote").ne(Expr::null()), |b| {
            b.abort("heap leaked across nodes");
        });
    });
    pb.func("read_it", &[], FuncKind::RpcHandler, |b| {
        b.read("x", "shared_name");
        b.ret(Expr::local("x"));
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    let peer = topo.node("b").id();
    topo.node("a").entry("writer", vec![Value::Node(peer)]);
    let r = World::run_once(&p, &topo, SimConfig::default()).unwrap();
    assert!(r.failures.is_empty(), "{:?}", r.failures);
}

// ---- misc ----------------------------------------------------------------------

#[test]
fn list_remove_of_absent_value_is_a_noop() {
    let r = run_entry(|b| {
        b.list_add("l", Expr::val(1));
        b.list_remove("l", Expr::val(99));
        b.list_contains("has", "l", Expr::val(1));
        b.if_(Expr::local("has").not(), |b| {
            b.abort("element vanished");
        });
    });
    assert!(r.failures.is_empty(), "{:?}", r.failures);
}

#[test]
fn map_remove_of_absent_key_is_a_noop_write() {
    let r = run_entry(|b| {
        b.map_remove("m", Expr::val("ghost"));
    });
    assert!(r.failures.is_empty());
    assert_eq!(r.trace.count_tag("wr"), 0, "selective: main is untraced");
}

#[test]
fn string_concat_builds_zk_paths() {
    let r = run_entry(|b| {
        b.assign("region", Expr::val("r9"));
        b.zk_create(
            Expr::val("/region/").concat(Expr::local("region")),
            Expr::val("OPEN"),
        );
        b.zk_exists("e", Expr::val("/region/r9"));
        b.if_(Expr::local("e").not(), |b| {
            b.abort("concat path mismatch");
        });
    });
    assert!(r.failures.is_empty(), "{:?}", r.failures);
}

#[test]
fn gate_abandon_lets_the_run_finish() {
    use dcatch_model::StmtId;
    use dcatch_sim::{Gate, GateDecision, GateEvent, StallAction};
    use dcatch_trace::TaskId;

    /// Holds everything at its first statement, then abandons on stall.
    struct HoldAll {
        held: std::collections::BTreeSet<TaskId>,
        released: bool,
        stalls: usize,
    }
    impl Gate for HoldAll {
        fn before(&mut self, ev: &GateEvent) -> GateDecision {
            if !self.released && self.held.insert(ev.task) {
                GateDecision::Hold
            } else {
                GateDecision::Proceed
            }
        }
        fn after(&mut self, _ev: &GateEvent) {}
        fn is_released(&mut self, _task: TaskId) -> bool {
            self.released
        }
        fn on_stall(&mut self, _held: &[TaskId]) -> StallAction {
            self.stalls += 1;
            self.released = true;
            StallAction::Abandon
        }
    }
    let _ = StmtId {
        func: dcatch_model::FuncId(0),
        idx: 0,
    };

    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.write("done", Expr::val(true));
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let mut gate = HoldAll {
        held: Default::default(),
        released: false,
        stalls: 0,
    };
    let r = World::run_with_gate(&p, &topo, SimConfig::default(), &mut gate).unwrap();
    assert!(r.completed);
    assert!(r.gate_abandoned);
    assert_eq!(gate.stalls, 1);
}
