//! Work-stealing trigger farm: parallel ordering exploration.
//!
//! Triggering dominates end-to-end cost (paper §6, Table 6), and each
//! (candidate, ordering) experiment is an independent deterministic
//! simulation — embarrassingly parallel. The farm flattens the candidate
//! list into a job grid of `candidates × ORDERINGS`, drains it with
//! scoped worker threads over a striped work-stealing queue, and then
//! performs a **deterministic merge**: results are consumed in candidate
//! order then ordering order, never in completion order, so verdicts,
//! reports, metrics, and span trees are byte-identical for any worker
//! count.
//!
//! **Cancellation.** When a [`ConfirmFn`] is supplied, a job whose runs
//! settle its candidate publishes the ordering index in a per-candidate
//! atomic; sibling workers consult it before starting a higher ordering
//! of the same candidate and skip the job entirely. Crucially the merge
//! *never reads those atomics* — it re-evaluates the (pure) confirm
//! predicate on the lower orderings' results — so cancellation only ever
//! saves work: a higher ordering that slipped through before the flag was
//! set is executed but invisible, its runs, metrics, and spans discarded.
//! Ordering 0 can never be skipped, which is what makes every visible
//! result available at merge time.
//!
//! **Observability.** Worker threads have their own thread-local metric
//! values and span storage, so each job runs inside a private capture and
//! metrics snapshot; the merge folds *visible* jobs back into the calling
//! thread via [`dcatch_obs::metrics::absorb`] and
//! [`dcatch_obs::trace::graft`]. A pipeline report therefore carries the
//! same counters and the same `trigger.candidate → trigger.order →
//! sim.run` span tree whether the farm ran on one worker or eight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dcatch_detect::Candidate;
use dcatch_hb::HbAnalysis;
use dcatch_model::Program;
use dcatch_sim::{SimConfig, Topology};

use crate::driver::{run_order, OrderRun, TriggerReport, Verdict};
use crate::placement::{plan_candidate, TriggerPlan};

/// Orderings explored per candidate (§5.1: both permutations of the pair).
pub const ORDERINGS: usize = 2;

/// Decides whether one ordering's runs settle its candidate — once true,
/// remaining orderings of that candidate may be cancelled. Arguments are
/// the candidate index and the ordering's runs. The predicate must be
/// pure (same runs → same answer): the deterministic merge re-evaluates
/// it instead of trusting worker-side cancellation flags.
pub type ConfirmFn<'a> = &'a (dyn Fn(usize, &[OrderRun]) -> bool + Sync);

/// Work description for one candidate: the placement plan plus the naive
/// direct fallback the driver retries with when the plan fails to
/// coordinate (`None` when the plan is already direct).
#[derive(Debug, Clone)]
pub struct FarmSpec {
    /// Placement plan from the §5.2 analysis.
    pub plan: TriggerPlan,
    /// Direct placement fallback, tried per ordering when `plan` does not
    /// coordinate.
    pub direct: Option<TriggerPlan>,
}

impl FarmSpec {
    /// Plans `candidate` against the HB graph. Planning needs `hb`; the
    /// farm's workers do not — specs are built up front on the caller.
    pub fn new(candidate: &Candidate, hb: &HbAnalysis) -> FarmSpec {
        let plan = plan_candidate(candidate, hb);
        let direct = (!plan.is_direct()).then(|| TriggerPlan::direct(candidate));
        FarmSpec { plan, direct }
    }
}

/// One job's worker-side harvest: the runs plus the thread-local
/// observability captured around them.
struct JobOutcome {
    runs: Vec<OrderRun>,
    metrics: dcatch_obs::MetricsSnapshot,
    spans: dcatch_obs::SpanNode,
}

/// Explores every spec's orderings on up to `jobs` worker threads and
/// returns one [`TriggerReport`] per spec, in spec order.
///
/// With `confirm` set, orderings above the first confirming one are
/// cancelled (cooperatively, see the module docs) and excluded from the
/// report either way — so the report, the absorbed metrics, and the
/// grafted spans are identical for any `jobs`, including 1.
///
/// With `deadline` set, jobs that would start after the instant are
/// skipped entirely and their candidates' reports come back with
/// [`TriggerReport::cancelled`] set. This rung is inherently wall-clock
/// dependent — it is the resource governor's time budget, not part of the
/// deterministic contract above.
pub fn run_farm(
    program: &Program,
    topo: &Topology,
    config: &SimConfig,
    specs: &[FarmSpec],
    jobs: usize,
    confirm: Option<ConfirmFn<'_>>,
    deadline: Option<Instant>,
) -> Vec<TriggerReport> {
    let total = specs.len() * ORDERINGS;
    // Register every trigger metric up front on the calling thread. Names
    // intern globally on first use, so a name first reached inside an
    // executed-but-cancelled job (say, the only retry in the process) would
    // otherwise appear in the report's name set only for *some* worker
    // counts — breaking byte-identical output.
    for name in [
        "trigger_attempts_total",
        "trigger_placement_rules_total",
        "trigger_order_runs_total",
        "trigger_direct_fallbacks_total",
        "trigger_retries",
        "trigger_verdict_serial_total",
        "trigger_verdict_benign_total",
        "trigger_verdict_harmful_total",
    ] {
        dcatch_obs::metrics::counter(name);
    }
    // lowest ordering that confirmed each candidate; purely a work-skip
    // hint for sibling workers — the merge below never reads it
    let confirmed: Vec<AtomicUsize> = specs.iter().map(|_| AtomicUsize::new(usize::MAX)).collect();
    let mut outcomes = steal_map(jobs, total, |i| {
        let (c, o) = (i / ORDERINGS, i % ORDERINGS);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return None; // time budget exhausted: skip, report as cancelled
        }
        if confirm.is_some() && confirmed[c].load(Ordering::Relaxed) < o {
            return None; // a lower ordering already settled this candidate
        }
        let before = dcatch_obs::metrics::snapshot();
        dcatch_obs::trace::begin_capture("trigger.job");
        let runs = explore_ordering(program, topo, config, &specs[c], o);
        let spans = dcatch_obs::trace::end_capture();
        let metrics = dcatch_obs::metrics::snapshot().delta_since(&before);
        if let Some(confirm) = confirm {
            if confirm(c, &runs) {
                confirmed[c].fetch_min(o, Ordering::Relaxed);
            }
        }
        Some(JobOutcome {
            runs,
            metrics,
            spans,
        })
    });

    // Deterministic merge: candidate-major, ordering-minor. Visibility of
    // ordering `o` depends only on whether a lower ordering's results
    // confirm — a property of the (deterministic) runs, not of timing.
    specs
        .iter()
        .enumerate()
        .map(|(c, spec)| {
            let _span = dcatch_obs::span!("trigger.candidate");
            dcatch_obs::counter!("trigger_attempts_total").inc();
            dcatch_obs::counter!("trigger_placement_rules_total")
                .add(spec.plan.rules.iter().map(Vec::len).sum::<usize>() as u64);
            let mut runs: Vec<OrderRun> = Vec::new();
            let mut cancelled = false;
            for o in 0..ORDERINGS {
                // A confirm-skipped job is never reached here: the settle
                // break below fires on the lower ordering first. So a
                // missing outcome can only mean the deadline skipped it.
                let Some(outcome) = outcomes[c * ORDERINGS + o].take() else {
                    cancelled = true;
                    break;
                };
                let settles = confirm.is_some_and(|f| f(c, &outcome.runs));
                dcatch_obs::metrics::absorb(&outcome.metrics);
                dcatch_obs::trace::graft(&outcome.spans);
                runs.extend(outcome.runs);
                if settles {
                    break; // higher orderings are invisible, ran or not
                }
            }
            let coordinated = runs.iter().any(|r| r.coordinated);
            let failed = runs.iter().any(|r| r.coordinated && !r.failures.is_empty());
            let verdict = if !coordinated {
                Verdict::Serial
            } else if failed {
                Verdict::Harmful
            } else {
                Verdict::BenignRace
            };
            if !cancelled {
                match verdict {
                    Verdict::Serial => dcatch_obs::counter!("trigger_verdict_serial_total").inc(),
                    Verdict::BenignRace => {
                        dcatch_obs::counter!("trigger_verdict_benign_total").inc()
                    }
                    Verdict::Harmful => dcatch_obs::counter!("trigger_verdict_harmful_total").inc(),
                }
            }
            TriggerReport {
                verdict,
                plan: spec.plan.clone(),
                runs,
                cancelled,
            }
        })
        .collect()
}

/// One ordering of one candidate: the planned run, plus the naive direct
/// placement as a fallback when the plan fails to coordinate (exactly the
/// serial driver's sequence, so concatenating job results reproduces it).
fn explore_ordering(
    program: &Program,
    topo: &Topology,
    config: &SimConfig,
    spec: &FarmSpec,
    first: usize,
) -> Vec<OrderRun> {
    let mut runs = Vec::new();
    let run = run_order(program, topo, config, &spec.plan, first, false);
    let coordinated = run.coordinated;
    runs.push(run);
    if !coordinated {
        if let Some(direct) = &spec.direct {
            runs.push(run_order(program, topo, config, direct, first, true));
        }
    }
    runs
}

/// Runs `total` independent index-addressed jobs on up to `jobs` scoped
/// worker threads and returns the results in **index order**, regardless
/// of which worker ran what when.
///
/// The queue is striped: worker `w` owns a contiguous slice of the index
/// space and drains it front-to-back with a `fetch_add` claim; once its
/// own stripe is exhausted it sweeps the other stripes and steals their
/// remaining indices the same way. Claims are single atomic increments —
/// no index is ever run twice, nothing blocks, and an overshooting claim
/// on a drained stripe is harmless. Even at `jobs == 1` the job runs on a
/// (single) worker thread, never inline: thread-local captures on the
/// caller must not be disturbed by job-side captures.
///
/// `run` may return `None` (a skipped job); the slot stays `None` in the
/// result. Worker threads inherit the caller's span verbosity.
pub fn steal_map<T, F>(jobs: usize, total: usize, run: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    let workers = jobs.max(1).min(total.max(1));
    // stripe w covers bounds[w]..bounds[w+1]
    let bounds: Vec<usize> = (0..=workers).map(|w| w * total / workers).collect();
    let cursors: Vec<AtomicUsize> = bounds[..workers]
        .iter()
        .map(|&b| AtomicUsize::new(b))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let verbose = dcatch_obs::trace::is_verbose();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (run, cursors, bounds, slots) = (&run, &cursors, &bounds, &slots);
            s.spawn(move || {
                dcatch_obs::trace::set_verbose(verbose);
                // own stripe first, then sweep the others round-robin
                for offset in 0..workers {
                    let v = (w + offset) % workers;
                    loop {
                        let i = cursors[v].fetch_add(1, Ordering::Relaxed);
                        if i >= bounds[v + 1] {
                            break;
                        }
                        *slots[i].lock().expect("farm result slot") = run(i);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("farm result slot"))
        .collect()
}

#[cfg(test)]
mod tests;
