//! Request-point placement analysis (paper §5.2).
//!
//! Naively putting `request` right before the racing accesses can hang the
//! system under test:
//!
//! 1. holding an event handler of a single-consumer queue starves every
//!    later event of that queue (including the other party's) — move the
//!    request to the corresponding *enqueue* site;
//! 2. holding an RPC function executed by the same handler thread as the
//!    other party's RPC starves it — move the request to the RPC *callers*;
//! 3. holding inside a lock critical section that the other party also
//!    needs deadlocks — move the request *before the critical section*;
//! 4. racing instructions executed under the same callstack many times
//!    flood the controller — move the request along the happens-before
//!    graph to a causally preceding operation *on a different node* with
//!    few dynamic instances.

use std::collections::BTreeMap;

use dcatch_detect::Candidate;
use dcatch_hb::HbAnalysis;
use dcatch_trace::{ExecCtx, HandlerKind, LockRef, OpKind, TraceSet};

use crate::controller::SideSpec;

/// Which §5.2 rules fired for a side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementRule {
    /// Request directly before the racing access.
    Direct,
    /// Moved to the event-enqueue site (rule 1).
    EnqueueSite,
    /// Moved to the RPC caller (rule 2).
    RpcCaller,
    /// Moved before the enclosing critical section (rule 3).
    CriticalSectionEntry,
    /// Moved along the HB graph to a remote causal ancestor (rule 4).
    RemoteAncestor,
}

/// The placement decision for one candidate.
#[derive(Debug, Clone)]
pub struct TriggerPlan {
    /// Request/confirm specification per side.
    pub sides: [SideSpec; 2],
    /// Rules applied per side (in application order).
    pub rules: [Vec<PlacementRule>; 2],
}

impl TriggerPlan {
    /// The naive plan: request right before each racing access.
    pub fn direct(candidate: &Candidate) -> TriggerPlan {
        let spec = |s: &dcatch_detect::AccessSite| SideSpec {
            stmt: s.stmt,
            instance: 1,
            access: s.stmt,
        };
        TriggerPlan {
            sides: [spec(&candidate.rep.0), spec(&candidate.rep.1)],
            rules: [vec![PlacementRule::Direct], vec![PlacementRule::Direct]],
        }
    }

    /// Whether this plan is the naive direct plan.
    pub fn is_direct(&self) -> bool {
        self.rules.iter().all(|r| r == &vec![PlacementRule::Direct])
    }
}

/// How many dynamic instances of a request point are considered "too many"
/// (rule 4).
const INSTANCE_THRESHOLD: usize = 3;

/// Computes the §5.2 placement for `candidate` against the traced run.
pub fn plan_candidate(candidate: &Candidate, hb: &HbAnalysis) -> TriggerPlan {
    let trace = hb.trace();
    let mut anchors = [candidate.rep.0.index, candidate.rep.1.index];
    let mut rules: [Vec<PlacementRule>; 2] = [Vec::new(), Vec::new()];

    // rule 1: both in event handlers of the same single-consumer queue
    let ev0 = event_of(trace, anchors[0]);
    let ev1 = event_of(trace, anchors[1]);
    if let (Some(e0), Some(e1)) = (&ev0, &ev1) {
        if e0.queue == e1.queue {
            let single = trace
                .queue_info(e0.queue.0, &e0.queue.1)
                .is_some_and(|q| q.is_single_consumer());
            if single {
                if let (Some(c0), Some(c1)) = (e0.create_idx, e1.create_idx) {
                    anchors = [c0, c1];
                    rules[0].push(PlacementRule::EnqueueSite);
                    rules[1].push(PlacementRule::EnqueueSite);
                }
            }
        }
    }

    // rule 2: both in handlers executed by the same worker thread — RPC
    // functions (paper case), socket messages, or watcher notifications;
    // holding one would starve the other. Move to the causally preceding
    // operation on the other side (RPC caller / socket sender / zk update).
    if rules[0].is_empty() {
        let same_worker = trace.records()[anchors[0]].task == trace.records()[anchors[1]].task
            && trace.records()[anchors[0]].ctx != trace.records()[anchors[1]].ctx;
        if same_worker {
            let sites = [
                handler_origin(trace, anchors[0]),
                handler_origin(trace, anchors[1]),
            ];
            if let [Some(c0), Some(c1)] = sites {
                anchors = [c0, c1];
                rules[0].push(PlacementRule::RpcCaller);
                rules[1].push(PlacementRule::RpcCaller);
            }
        }
    }

    // rule 3: common lock around the (possibly moved) anchors
    let locks0 = held_locks(trace, anchors[0]);
    let locks1 = held_locks(trace, anchors[1]);
    let common: Vec<&LockRef> = locks0.keys().filter(|l| locks1.contains_key(*l)).collect();
    if let Some(lock) = common.first() {
        let a0 = locks0[*lock];
        let a1 = locks1[*lock];
        anchors = [a0, a1];
        rules[0].push(PlacementRule::CriticalSectionEntry);
        rules[1].push(PlacementRule::CriticalSectionEntry);
    }

    // rule 4: too many dynamic instances → move to a remote causal ancestor
    for (i, anchor) in anchors.iter_mut().enumerate() {
        if occurrence_count(trace, *anchor) > INSTANCE_THRESHOLD {
            if let Some(better) = remote_ancestor(hb, *anchor) {
                *anchor = better;
                rules[i].push(PlacementRule::RemoteAncestor);
            }
        }
    }

    let side = |i: usize, access: &dcatch_detect::AccessSite| {
        let stmt = trace.records()[anchors[i]].stmt().unwrap_or(access.stmt);
        SideSpec {
            stmt,
            instance: 1,
            access: access.stmt,
        }
    };
    for r in &mut rules {
        if r.is_empty() {
            r.push(PlacementRule::Direct);
        }
    }
    TriggerPlan {
        sides: [side(0, &candidate.rep.0), side(1, &candidate.rep.1)],
        rules,
    }
}

// ---------------------------------------------------------------------------
// trace inspection helpers

struct EventInfo {
    queue: (dcatch_model::NodeId, String),
    create_idx: Option<usize>,
}

/// If the record executes inside an event handler, its event identity and
/// enqueue site.
fn event_of(trace: &TraceSet, idx: usize) -> Option<EventInfo> {
    let r = &trace.records()[idx];
    let ExecCtx::Handler {
        kind: HandlerKind::Event,
        ..
    } = r.ctx
    else {
        return None;
    };
    // the EventBegin of this handler instance: same task + same ctx
    let begin = trace.records()[..=idx].iter().rev().find(|c| {
        c.task == r.task && c.ctx == r.ctx && matches!(c.kind, OpKind::EventBegin { .. })
    })?;
    let OpKind::EventBegin { event } = begin.kind else {
        unreachable!("matched above");
    };
    let (node, queue) = trace.event_queue(event.0)?;
    let create_idx =
        trace.find(|c| matches!(c.kind, OpKind::EventCreate { event: e } if e == event));
    Some(EventInfo {
        queue: (*node, queue.to_owned()),
        create_idx,
    })
}

/// For a record inside an RPC/socket/watcher handler, the record of the
/// operation that *caused* the handler instance: the `RpcCreate` at the
/// caller, the `SocketSend` at the sender, or the `ZkUpdate` that fired
/// the notification.
fn handler_origin(trace: &TraceSet, idx: usize) -> Option<usize> {
    let r = &trace.records()[idx];
    let ExecCtx::Handler { kind, .. } = r.ctx else {
        return None;
    };
    let same_instance = |c: &dcatch_trace::Record| c.task == r.task && c.ctx == r.ctx;
    match kind {
        HandlerKind::Rpc => {
            let begin = trace.records()[..=idx]
                .iter()
                .rev()
                .find(|c| same_instance(c) && matches!(c.kind, OpKind::RpcBegin { .. }))?;
            let OpKind::RpcBegin { rpc } = begin.kind else {
                unreachable!("matched above");
            };
            trace.find(|c| matches!(c.kind, OpKind::RpcCreate { rpc: x } if x == rpc))
        }
        HandlerKind::Socket => {
            let recv = trace.records()[..=idx]
                .iter()
                .rev()
                .find(|c| same_instance(c) && matches!(c.kind, OpKind::SocketRecv { .. }))?;
            let OpKind::SocketRecv { msg } = recv.kind else {
                unreachable!("matched above");
            };
            trace.find(|c| matches!(c.kind, OpKind::SocketSend { msg: m } if m == msg))
        }
        HandlerKind::ZkWatcher => {
            let pushed = trace.records()[..=idx]
                .iter()
                .rev()
                .find(|c| same_instance(c) && matches!(c.kind, OpKind::ZkPushed { .. }))?;
            let OpKind::ZkPushed { path, version } = &pushed.kind else {
                unreachable!("matched above");
            };
            let (path, version) = (path.clone(), *version);
            trace.find(|c| matches!(&c.kind, OpKind::ZkUpdate { path: p, version: v } if *p == path && *v == version))
        }
        HandlerKind::Event => None,
    }
}

/// Dynamic instances of the same *operation* as the record at `idx`:
/// same statement and same record kind (different record kinds — e.g. a
/// handler's first statement and the `SocketRecv` marking its dispatch —
/// can share a callstack leaf).
fn occurrence_count(trace: &TraceSet, idx: usize) -> usize {
    let anchor = &trace.records()[idx];
    let Some(stmt) = anchor.stmt() else {
        return 1;
    };
    let tag = anchor.kind.tag();
    trace.count(|r| r.kind.tag() == tag && r.stmt() == Some(stmt))
}

/// Locks held by the record's task at the record, mapped to the index of
/// the currently open acquire record.
fn held_locks(trace: &TraceSet, idx: usize) -> BTreeMap<LockRef, usize> {
    let task = trace.records()[idx].task;
    let mut held: BTreeMap<LockRef, usize> = BTreeMap::new();
    for (i, r) in trace.records()[..idx].iter().enumerate() {
        if r.task != task {
            continue;
        }
        match &r.kind {
            OpKind::LockAcquire { lock } => {
                held.insert(lock.clone(), i);
            }
            OpKind::LockRelease { lock } => {
                held.remove(lock);
            }
            _ => {}
        }
    }
    held
}

/// Walks HB predecessors of `idx` looking for a record on a different node
/// whose statement has few dynamic instances.
fn remote_ancestor(hb: &HbAnalysis, idx: usize) -> Option<usize> {
    let trace = hb.trace();
    let node = trace.records()[idx].task.node;
    let mut frontier = vec![idx];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(v) = frontier.pop() {
        for (p, _) in hb.predecessors(v) {
            if !seen.insert(p) {
                continue;
            }
            let r = &trace.records()[p];
            if r.task.node != node
                && r.stmt().is_some()
                && occurrence_count(trace, p) <= INSTANCE_THRESHOLD
            {
                return Some(p);
            }
            frontier.push(p);
        }
    }
    None
}
