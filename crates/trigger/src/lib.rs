//! DCbug triggering and validation (paper §5).
//!
//! A DCatch bug report `(s, t)` may still be wrong for two reasons: the
//! two accesses may not actually be concurrent (unidentified custom
//! synchronization), or their concurrent execution may be harmless. The
//! triggering module settles both questions *experimentally*: it re-runs
//! the system under a timing controller and forces `s` right before `t`,
//! then `t` right before `s`, watching for failures.
//!
//! The controller of §5.1 (client-side `request`/`confirm` APIs plus a
//! message-controller server) is realized as a [`ControllerGate`]
//! installed into the simulator: tasks about to execute a *request point*
//! are held; once both parties have requested, one is released, its racing
//! access execution is the `confirm`, and then the other party proceeds.
//!
//! Placement of request points follows the analysis of §5.2
//! ([`plan_candidate`]): naive placement right before the racing accesses
//! can deadlock the system (single-consumer event handlers, RPC handlers
//! sharing a worker, lock critical sections) or drown the controller in
//! dynamic instances — the plan moves request points to enqueue sites, RPC
//! callers, critical-section entries, or remote causal ancestors along the
//! HB graph.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod driver;
mod farm;
mod placement;

pub use controller::{ControllerGate, Phase, SideSpec};
pub use driver::{trigger_candidate, OrderRun, TriggerReport, Verdict};
pub use farm::{run_farm, steal_map, ConfirmFn, FarmSpec, ORDERINGS};
pub use placement::{plan_candidate, PlacementRule, TriggerPlan};
