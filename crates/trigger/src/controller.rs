//! The timing controller, realized as a simulator [`Gate`].

use dcatch_model::StmtId;
use dcatch_sim::{Gate, GateDecision, GateEvent, StallAction};
use dcatch_trace::TaskId;

/// Where one party must request permission: hold the task that executes
/// the `instance`-th dynamic occurrence of `stmt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideSpec {
    /// Request-point statement.
    pub stmt: StmtId,
    /// Which dynamic occurrence to hold at (1-based; the paper's prototype
    /// "focuses on the first dynamic instance of every racing instruction").
    pub instance: usize,
    /// The racing access statement itself — executing it is the `confirm`.
    pub access: StmtId,
}

/// Coordination phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for both parties to reach their request points.
    Waiting,
    /// Both requested; the first party is running toward its access.
    FirstGo,
    /// First party confirmed; the second party is running.
    SecondGo,
    /// Both confirmed.
    Done,
}

/// Gate forcing one of the two orders of a candidate pair.
#[derive(Debug)]
pub struct ControllerGate {
    specs: [SideSpec; 2],
    /// Index (0/1) of the party released first.
    first: usize,
    hits: [usize; 2],
    claimed: [Option<TaskId>; 2],
    phase: Phase,
    /// Both parties were simultaneously held at their request points — the
    /// experimental proof that the accesses are truly concurrent.
    both_requested: bool,
    /// The world stalled and the controller gave up (ordering infeasible).
    abandoned: bool,
}

impl ControllerGate {
    /// Creates a controller forcing side `first` (0 or 1) to execute its
    /// access before the other side.
    pub fn new(specs: [SideSpec; 2], first: usize) -> ControllerGate {
        assert!(first < 2);
        ControllerGate {
            specs,
            first,
            hits: [0; 2],
            claimed: [None; 2],
            phase: Phase::Waiting,
            both_requested: false,
            abandoned: false,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether both parties were held concurrently at their request points.
    pub fn both_requested(&self) -> bool {
        self.both_requested
    }

    /// Whether the controller abandoned coordination on a stall.
    pub fn abandoned(&self) -> bool {
        self.abandoned
    }

    /// Whether the full forced order was executed (both confirms seen).
    pub fn completed(&self) -> bool {
        self.phase == Phase::Done
    }

    fn second(&self) -> usize {
        1 - self.first
    }

    /// Whether `ev` is side `i`'s racing access executing. With direct
    /// placement (`stmt == access`) the claimed task itself performs the
    /// access; a *moved* request point (§5.2 rules — enqueue site, RPC
    /// caller, remote causal ancestor) gates a causally *downstream*
    /// access that a different task (the handler's worker thread)
    /// executes, so the confirm must not insist on the claimed task.
    fn confirms(&self, i: usize, ev: &GateEvent) -> bool {
        ev.stmt == self.specs[i].access
            && (self.specs[i].stmt != self.specs[i].access || self.claimed[i] == Some(ev.task))
    }
}

impl Gate for ControllerGate {
    fn before(&mut self, ev: &GateEvent) -> GateDecision {
        if self.phase != Phase::Waiting {
            return GateDecision::Proceed;
        }
        for i in 0..2 {
            if ev.stmt != self.specs[i].stmt {
                continue;
            }
            match self.claimed[i] {
                Some(t) if t == ev.task => return GateDecision::Proceed, // re-hit after release
                Some(_) => continue, // side already owned by another task
                None => {
                    // don't let one task own both sides
                    if self.claimed[1 - i] == Some(ev.task) {
                        continue;
                    }
                    self.hits[i] += 1;
                    if self.hits[i] == self.specs[i].instance {
                        self.claimed[i] = Some(ev.task);
                        if self.claimed[0].is_some() && self.claimed[1].is_some() {
                            self.both_requested = true;
                            self.phase = Phase::FirstGo;
                        }
                        return GateDecision::Hold;
                    }
                }
            }
        }
        GateDecision::Proceed
    }

    fn after(&mut self, ev: &GateEvent) {
        match self.phase {
            Phase::FirstGo => {
                if self.confirms(self.first, ev) {
                    self.phase = Phase::SecondGo;
                }
            }
            Phase::SecondGo => {
                if self.confirms(self.second(), ev) {
                    self.phase = Phase::Done;
                }
            }
            Phase::Waiting | Phase::Done => {}
        }
    }

    fn is_released(&mut self, task: TaskId) -> bool {
        match self.phase {
            Phase::Waiting => false,
            Phase::FirstGo => self.claimed[self.first] == Some(task),
            Phase::SecondGo | Phase::Done => true,
        }
    }

    fn on_stall(&mut self, _held: &[TaskId]) -> StallAction {
        // a stall before the protocol completed means the remaining party
        // can never arrive (it is ordered after a held task): give up
        if self.phase != Phase::Done {
            self.abandoned = true;
        }
        StallAction::Abandon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_model::{FuncId, NodeId};
    use dcatch_trace::CallStack;

    fn sid(f: u32, i: u32) -> StmtId {
        StmtId {
            func: FuncId(f),
            idx: i,
        }
    }

    fn task(i: u32) -> TaskId {
        TaskId {
            node: NodeId(0),
            index: i,
        }
    }

    fn ev(t: TaskId, stmt: StmtId) -> GateEvent {
        GateEvent {
            task: t,
            stmt,
            stack: CallStack(vec![stmt]),
        }
    }

    fn specs() -> [SideSpec; 2] {
        [
            SideSpec {
                stmt: sid(0, 1),
                instance: 1,
                access: sid(0, 2),
            },
            SideSpec {
                stmt: sid(1, 5),
                instance: 1,
                access: sid(1, 6),
            },
        ]
    }

    #[test]
    fn holds_both_then_releases_in_order() {
        let mut g = ControllerGate::new(specs(), 0);
        let (ta, tb) = (task(0), task(1));
        // side 0 arrives: held
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Hold);
        assert!(!g.is_released(ta));
        assert_eq!(g.phase(), Phase::Waiting);
        // side 1 arrives: held, both requested, first released
        assert_eq!(g.before(&ev(tb, sid(1, 5))), GateDecision::Hold);
        assert!(g.both_requested());
        assert_eq!(g.phase(), Phase::FirstGo);
        assert!(g.is_released(ta));
        assert!(!g.is_released(tb));
        // re-hitting the request point after release proceeds
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Proceed);
        // first confirm
        g.after(&ev(ta, sid(0, 2)));
        assert_eq!(g.phase(), Phase::SecondGo);
        assert!(g.is_released(tb));
        // second confirm
        g.after(&ev(tb, sid(1, 6)));
        assert!(g.completed());
    }

    #[test]
    fn instance_counting_skips_early_hits() {
        let mut g = ControllerGate::new(
            [
                SideSpec {
                    stmt: sid(0, 1),
                    instance: 3,
                    access: sid(0, 1),
                },
                SideSpec {
                    stmt: sid(1, 1),
                    instance: 1,
                    access: sid(1, 1),
                },
            ],
            0,
        );
        let ta = task(0);
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Proceed);
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Proceed);
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Hold);
    }

    #[test]
    fn one_task_cannot_claim_both_sides() {
        let shared = sid(0, 1);
        let mut g = ControllerGate::new(
            [
                SideSpec {
                    stmt: shared,
                    instance: 1,
                    access: shared,
                },
                SideSpec {
                    stmt: shared,
                    instance: 1,
                    access: shared,
                },
            ],
            0,
        );
        let (ta, tb) = (task(0), task(1));
        assert_eq!(g.before(&ev(ta, shared)), GateDecision::Hold); // claims side 0
        assert_eq!(g.before(&ev(tb, shared)), GateDecision::Hold); // claims side 1
        assert!(g.both_requested());
    }

    #[test]
    fn stall_before_completion_abandons() {
        let mut g = ControllerGate::new(specs(), 0);
        let ta = task(0);
        assert_eq!(g.before(&ev(ta, sid(0, 1))), GateDecision::Hold);
        let action = g.on_stall(&[ta]);
        assert_eq!(action, StallAction::Abandon);
        assert!(g.abandoned());
        assert!(!g.both_requested());
    }
}
