//! Ordering exploration and verdicts.
//!
//! For each candidate the driver explores both orders of the racing pair
//! (paper §5.1: "the controller will keep a record of what ordering has
//! been explored and will re-start the system several times, until all
//! ordering permutations... are explored"), then classifies the report the
//! way §7.1 does: **serial** (never actually concurrent), **benign** (a
//! true race with no failure), or **harmful** (a true race causing a
//! failure).
//!
//! The exploration itself lives in the [farm](crate::farm):
//! [`trigger_candidate`] is the one-candidate wrapper, running both
//! orderings to completion (no cancellation) on a single worker.

use dcatch_detect::Candidate;
use dcatch_hb::HbAnalysis;
use dcatch_model::Program;
use dcatch_sim::{Failure, SimConfig, Topology, World};

use crate::controller::ControllerGate;
use crate::farm::{run_farm, FarmSpec};
use crate::placement::TriggerPlan;

/// One forced-order experiment.
#[derive(Debug)]
pub struct OrderRun {
    /// Which side (0/1 of the candidate pair) was forced first.
    pub first: usize,
    /// Both parties were held concurrently — proof of true concurrency.
    pub coordinated: bool,
    /// The full order (both confirms) executed.
    pub completed: bool,
    /// The controller gave up on a stall.
    pub abandoned: bool,
    /// Failures observed during this run.
    pub failures: Vec<Failure>,
    /// Whether this run used the naive direct placement as a fallback.
    pub used_direct_fallback: bool,
}

/// The paper's three report categories (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `s` and `t` are not truly concurrent (custom synchronization the HB
    /// model missed).
    Serial,
    /// Truly concurrent, but no forced order produced a failure.
    BenignRace,
    /// Truly concurrent and at least one order produced a failure.
    Harmful,
}

/// Result of triggering one candidate.
#[derive(Debug)]
pub struct TriggerReport {
    /// Final classification.
    pub verdict: Verdict,
    /// The placement plan used.
    pub plan: TriggerPlan,
    /// Both order experiments (possibly plus direct-placement fallbacks).
    pub runs: Vec<OrderRun>,
    /// The farm's deadline expired before every ordering ran: `verdict` is
    /// provisional (computed from the runs that did execute, possibly
    /// none) and callers should treat the candidate as undecided.
    pub cancelled: bool,
}

impl TriggerReport {
    /// Failures observed across all runs.
    pub fn failures(&self) -> impl Iterator<Item = &Failure> {
        self.runs.iter().flat_map(|r| r.failures.iter())
    }
}

/// Explores both orders of `candidate` and classifies it.
///
/// `config` must be the configuration of the traced run (same seed) so the
/// controller's placements hit the same dynamic instances. Tracing is
/// disabled during triggering runs for speed.
pub fn trigger_candidate(
    program: &Program,
    topo: &Topology,
    config: &SimConfig,
    candidate: &Candidate,
    hb: &HbAnalysis,
) -> TriggerReport {
    let spec = FarmSpec::new(candidate, hb);
    run_farm(
        program,
        topo,
        config,
        std::slice::from_ref(&spec),
        1,
        None,
        None,
    )
    .pop()
    .expect("one report per spec")
}

pub(crate) fn run_order(
    program: &Program,
    topo: &Topology,
    config: &SimConfig,
    plan: &TriggerPlan,
    first: usize,
    used_direct_fallback: bool,
) -> OrderRun {
    let _span = dcatch_obs::span!("trigger.order");
    dcatch_obs::counter!("trigger_order_runs_total").inc();
    if used_direct_fallback {
        dcatch_obs::counter!("trigger_direct_fallbacks_total").inc();
    }
    // An abandoned run means the gate blocked one side past its patience
    // budget and gave up — often a scheduling accident of the particular
    // seed rather than a property of the ordering. Retry a bounded number
    // of times with a derived seed before accepting the abandonment.
    const MAX_RETRIES: u64 = 2;
    let mut attempt: u64 = 0;
    loop {
        let mut gate = ControllerGate::new(plan.sides, first);
        let mut cfg = config.clone();
        cfg.trace_enabled = false;
        if attempt > 0 {
            cfg.seed = config.seed ^ retry_seed(plan, first, attempt);
        }
        let result = World::run_with_gate(program, topo, cfg, &mut gate)
            .expect("triggering re-run must start");
        if gate.abandoned() && attempt < MAX_RETRIES {
            attempt += 1;
            dcatch_obs::counter!("trigger_retries").inc();
            continue;
        }
        return OrderRun {
            first,
            coordinated: gate.both_requested(),
            completed: gate.completed(),
            abandoned: gate.abandoned(),
            failures: result.failures,
            used_direct_fallback,
        };
    }
}

/// Deterministic retry-seed stream per (plan, ordering, attempt). Salting
/// with the plan's *content* — not the candidate's position in whatever
/// batch it came from — means a retried job draws the same seeds whether
/// it runs serially, on farm worker 3, or alone through
/// [`trigger_candidate`].
fn retry_seed(plan: &TriggerPlan, first: usize, attempt: u64) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64 ^ first as u64;
    for side in &plan.sides {
        for v in [
            u64::from(side.stmt.func.0),
            u64::from(side.stmt.idx),
            side.instance as u64,
            u64::from(side.access.func.0),
            u64::from(side.access.idx),
        ] {
            acc = dcatch_obs::SmallRng::seed_from_u64(acc ^ v).next_u64();
        }
    }
    dcatch_obs::SmallRng::seed_from_u64(acc ^ attempt).next_u64()
}

#[cfg(test)]
mod tests;
