use std::sync::atomic::{AtomicUsize, Ordering};

use dcatch_detect::find_candidates;
use dcatch_hb::{HbAnalysis, HbConfig};
use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder};
use dcatch_sim::{SimConfig, Topology, World};

use super::{run_farm, steal_map, FarmSpec, ORDERINGS};

#[test]
fn steal_map_runs_every_index_once_in_index_order() {
    let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
    for jobs in [1, 2, 5, 64] {
        for h in &hits {
            h.store(0, Ordering::Relaxed);
        }
        let out = steal_map(jobs, hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            Some(i * 10)
        });
        assert_eq!(out.len(), hits.len(), "jobs={jobs}");
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, Some(i * 10), "jobs={jobs} index {i}");
            assert_eq!(hits[i].load(Ordering::Relaxed), 1, "jobs={jobs} index {i}");
        }
    }
}

#[test]
fn steal_map_keeps_skipped_slots_empty() {
    let out = steal_map(3, 10, |i| (i % 2 == 0).then_some(i));
    for (i, slot) in out.iter().enumerate() {
        assert_eq!(*slot, (i % 2 == 0).then_some(i), "index {i}");
    }
}

#[test]
fn steal_map_with_zero_jobs_or_zero_work_is_fine() {
    let out = steal_map(0, 4, Some);
    assert_eq!(out, vec![Some(0), Some(1), Some(2), Some(3)]);
    let empty: Vec<Option<usize>> = steal_map(4, 0, Some);
    assert!(empty.is_empty());
}

/// Two benign races (on `a` and `b`) between the same pair of workers,
/// giving the farm a multi-candidate grid to chew on.
fn two_race_setup() -> (Program, Topology, SimConfig, HbAnalysis) {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("w1", vec![]);
        b.spawn_detached("w2", vec![]);
    });
    pb.func("w1", &[], FuncKind::Regular, |b| {
        b.write("a", Expr::val(1));
        b.write("b", Expr::val(1));
    });
    pb.func("w2", &[], FuncKind::Regular, |b| {
        b.write("a", Expr::val(2));
        b.write("b", Expr::val(2));
    });
    let p = pb.build().expect("two-race program builds");
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let cfg = SimConfig::default().with_seed(42).with_full_tracing();
    let run = World::run_once(&p, &topo, cfg.clone()).expect("base run starts");
    assert!(
        run.failures.is_empty(),
        "base run clean: {:?}",
        run.failures
    );
    let hb = HbAnalysis::build(run.trace, &HbConfig::default()).expect("hb builds");
    (p, topo, cfg, hb)
}

#[test]
fn run_farm_is_invariant_in_worker_count() {
    let (p, topo, cfg, hb) = two_race_setup();
    let specs: Vec<FarmSpec> = find_candidates(&hb)
        .iter()
        .map(|c| FarmSpec::new(c, &hb))
        .collect();
    assert!(specs.len() >= 2, "want a multi-candidate grid");

    let mut baseline: Option<(String, dcatch_obs::MetricsSnapshot)> = None;
    for jobs in [1, 2, 8] {
        let before = dcatch_obs::metrics::snapshot();
        let reports = run_farm(&p, &topo, &cfg, &specs, jobs, None, None);
        let delta = dcatch_obs::metrics::snapshot().delta_since(&before);
        let rendered = format!("{reports:#?}");
        match &baseline {
            None => baseline = Some((rendered, delta)),
            Some((r0, d0)) => {
                assert_eq!(&rendered, r0, "reports differ at jobs={jobs}");
                assert_eq!(d0.counters, delta.counters, "metrics differ at jobs={jobs}");
            }
        }
    }
}

/// With a confirm predicate that settles on the first ordering, the second
/// ordering is cancelled (or executed-but-discarded) — either way it must
/// contribute nothing: no run in the report, no absorbed metrics.
#[test]
fn cancelled_orderings_contribute_no_runs_and_no_metrics() {
    let (p, topo, cfg, hb) = two_race_setup();
    let candidates = find_candidates(&hb);
    let c = candidates.iter().next().expect("a candidate");
    let specs = [FarmSpec::new(c, &hb)];
    let confirm = |_ci: usize, runs: &[super::OrderRun]| runs.iter().any(|r| r.completed);

    for jobs in [1, 2] {
        let before = dcatch_obs::metrics::snapshot();
        let reports = run_farm(&p, &topo, &cfg, &specs, jobs, Some(&confirm), None);
        let delta = dcatch_obs::metrics::snapshot().delta_since(&before);
        let report = &reports[0];
        assert!(
            report.runs.iter().all(|r| r.first == 0),
            "jobs={jobs}: only ordering 0 may be visible: {report:#?}"
        );
        assert_eq!(
            delta.counters.get("trigger_order_runs_total"),
            Some(&1),
            "jobs={jobs}: exactly the one visible order run is absorbed"
        );
    }

    // without confirm, the same candidate explores both orderings
    let before = dcatch_obs::metrics::snapshot();
    let reports = run_farm(&p, &topo, &cfg, &specs, 1, None, None);
    let delta = dcatch_obs::metrics::snapshot().delta_since(&before);
    assert_eq!(reports[0].runs.len(), ORDERINGS);
    assert_eq!(delta.counters.get("trigger_order_runs_total"), Some(&2));
}

/// An already-expired deadline skips every job; each report comes back
/// cancelled with no runs instead of panicking in the merge.
#[test]
fn expired_deadline_cancels_every_job() {
    let (p, topo, cfg, hb) = two_race_setup();
    let specs: Vec<FarmSpec> = find_candidates(&hb)
        .iter()
        .map(|c| FarmSpec::new(c, &hb))
        .collect();
    let past = std::time::Instant::now();
    let reports = run_farm(&p, &topo, &cfg, &specs, 2, None, Some(past));
    assert_eq!(reports.len(), specs.len());
    for r in &reports {
        assert!(r.cancelled, "deadline skip must surface as cancelled");
        assert!(r.runs.is_empty(), "no job ran: {r:#?}");
    }
    // a far-future deadline changes nothing
    let future = std::time::Instant::now() + std::time::Duration::from_secs(3600);
    let reports = run_farm(&p, &topo, &cfg, &specs, 2, None, Some(future));
    assert!(reports.iter().all(|r| !r.cancelled && !r.runs.is_empty()));
}

/// The farm's verdict for a full (unconfirmed) exploration matches the
/// serial driver's, and span trees graft under the caller's capture.
#[test]
fn farm_spans_graft_under_the_callers_capture() {
    let (p, topo, cfg, hb) = two_race_setup();
    let specs: Vec<FarmSpec> = find_candidates(&hb)
        .iter()
        .map(|c| FarmSpec::new(c, &hb))
        .collect();
    dcatch_obs::trace::begin_capture("test");
    let reports = run_farm(&p, &topo, &cfg, &specs, 4, None, None);
    let tree = dcatch_obs::trace::end_capture();
    let cand = tree.child("trigger.candidate").expect("candidate span");
    assert_eq!(cand.count, specs.len() as u64);
    let order = cand.child("trigger.order").expect("order span grafted");
    assert_eq!(
        order.count,
        reports.iter().map(|r| r.runs.len() as u64).sum::<u64>()
    );
}
