use dcatch_detect::find_candidates;
use dcatch_hb::{HbAnalysis, HbConfig};
use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder};
use dcatch_sim::{RunFailureKind, SimConfig, Topology, World};

use super::{trigger_candidate, Verdict};
use crate::placement::{plan_candidate, PlacementRule};

fn setup(p: &Program, topo: &Topology) -> (SimConfig, HbAnalysis) {
    let cfg = SimConfig::default().with_seed(42).with_full_tracing();
    let run = World::run_once(p, topo, cfg.clone())
        .expect("traced base run (seed 42) must start cleanly");
    assert!(
        run.failures.is_empty(),
        "base run must be correct: {:?}",
        run.failures
    );
    let hb = HbAnalysis::build(run.trace, &HbConfig::default())
        .expect("HB analysis must accept the seed-42 base trace");
    (cfg, hb)
}

/// An order violation: the reader aborts when it runs before the writer.
/// The natural run is correct (the reader sleeps); triggering must force
/// the bad order and classify the candidate as harmful.
#[test]
fn order_violation_is_confirmed_harmful() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("writer", vec![]);
        b.spawn_detached("reader", vec![]);
    });
    pb.func("writer", &[], FuncKind::Regular, |b| {
        b.write("init", Expr::val(1));
    });
    pb.func("reader", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(50)); // natural timing: writer wins
        b.read("v", "init");
        b.if_(Expr::local("v").eq(Expr::null()), |b| {
            b.abort("read uninitialized state");
        });
    });
    let p = pb.build().expect("order-violation program must build");
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let (cfg, hb) = setup(&p, &topo);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "init")
        .expect("init candidate");

    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert_eq!(report.verdict, Verdict::Harmful, "{report:#?}");
    assert!(report
        .failures()
        .any(|f| matches!(f.kind, RunFailureKind::Abort)));
    // one of the two orders must be failure-free (the correct one)
    assert!(report
        .runs
        .iter()
        .any(|r| r.coordinated && r.failures.is_empty()));
}

/// Two racing writers with no failure impact in either order: a true but
/// benign race.
#[test]
fn harmless_race_is_benign() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("w1", vec![]);
        b.spawn_detached("w2", vec![]);
    });
    pb.func("w1", &[], FuncKind::Regular, |b| {
        b.write("stat", Expr::val(1));
    });
    pb.func("w2", &[], FuncKind::Regular, |b| {
        b.write("stat", Expr::val(2));
    });
    let p = pb.build().expect("harmless-race program must build");
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let (cfg, hb) = setup(&p, &topo);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .next()
        .expect("the racing writes on `stat` must survive detection");
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert_eq!(report.verdict, Verdict::BenignRace, "{report:#?}");
}

/// Custom synchronization the HB model cannot see (a spin-wait barrier):
/// the accesses are reported concurrent, but triggering discovers that one
/// party can never reach its request point while the other is held — the
/// paper's "serial" report category.
#[test]
fn custom_sync_pair_is_classified_serial() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("producer", vec![]);
        b.spawn_detached("consumer", vec![]);
    });
    pb.func("producer", &[], FuncKind::Regular, |b| {
        b.write("data", Expr::val(7));
        b.write("flag", Expr::val(true));
    });
    pb.func("consumer", &[], FuncKind::Regular, |b| {
        b.assign("go", Expr::val(false));
        b.retry_while(Expr::local("go").not(), |b| {
            b.read("f", "flag");
            b.assign("go", Expr::local("f"));
        });
        b.read("d", "data");
    });
    let p = pb.build().expect("custom-sync program must build");
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let (cfg, hb) = setup(&p, &topo);
    let candidates = find_candidates(&hb);
    // deliberately skip the loop-sync analysis: the data pair stays a
    // candidate, as with the paper's unidentified custom synchronization
    let c = candidates
        .iter()
        .find(|c| c.object() == "data")
        .expect("data candidate");
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert_eq!(report.verdict, Verdict::Serial, "{report:#?}");
}

/// MR-4637 shape: two handlers of one single-consumer queue race. Naive
/// request points inside the handlers deadlock the dispatch loop; the
/// placement analysis must move them to the enqueue sites, and the
/// coordination must then succeed.
#[test]
fn single_consumer_queue_placement_moves_to_enqueue_sites() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("committer", vec![]);
        b.spawn_detached("killer", vec![]);
    });
    pb.func("committer", &[], FuncKind::Regular, |b| {
        b.enqueue("dispatch", "on_commit", vec![]);
    });
    pb.func("killer", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(40));
        b.enqueue("dispatch", "on_kill", vec![]);
    });
    pb.func("on_commit", &[], FuncKind::EventHandler, |b| {
        b.read("s", "attempt_state");
        b.if_(Expr::local("s").eq(Expr::val("killed")), |b| {
            b.abort("commit after kill");
        });
        b.write("attempt_state", Expr::val("committed"));
    });
    pb.func("on_kill", &[], FuncKind::EventHandler, |b| {
        b.write("attempt_state", Expr::val("killed"));
    });
    let p = pb.build().expect("MR-4637-shaped program must build");
    let mut topo = Topology::new();
    topo.node("am").entry("main", vec![]).queue("dispatch", 1);
    let (cfg, hb) = setup(&p, &topo);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "attempt_state" && (c.rep.0.is_write != c.rep.1.is_write))
        .expect("read/write candidate on attempt_state");

    let plan = plan_candidate(c, &hb);
    assert!(
        plan.rules[0].contains(&PlacementRule::EnqueueSite),
        "{plan:#?}"
    );

    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert!(
        report.runs.iter().any(|r| r.coordinated),
        "enqueue-site placement must coordinate: {report:#?}"
    );
    assert_eq!(report.verdict, Verdict::Harmful, "{report:#?}");
}

/// Lock-guarded accesses: request points move before the critical
/// sections (rule 3), and coordination succeeds instead of deadlocking.
#[test]
fn lock_guarded_race_moves_before_critical_section() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.spawn_detached("t1", vec![]);
        b.spawn_detached("t2", vec![]);
    });
    pb.func("t1", &[], FuncKind::Regular, |b| {
        b.lock("m");
        b.write("shared", Expr::val("t1"));
        b.unlock("m");
    });
    pb.func("t2", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(30));
        b.lock("m");
        b.read("v", "shared");
        b.if_(Expr::local("v").eq(Expr::null()), |b| {
            b.log_fatal("t2 saw uninitialized shared state");
        });
        b.unlock("m");
    });
    let p = pb.build().expect("lock-guarded program must build");
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]);
    let (cfg, hb) = setup(&p, &topo);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "shared")
        .expect("shared candidate");
    let plan = plan_candidate(c, &hb);
    assert!(
        plan.rules[0].contains(&PlacementRule::CriticalSectionEntry),
        "{plan:#?}"
    );
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert!(report.runs.iter().any(|r| r.coordinated), "{report:#?}");
    assert_eq!(report.verdict, Verdict::Harmful, "{report:#?}");
}
