//! Additional triggering tests: dynamic-instance selection, direct-plan
//! fallback, and the same-worker socket placement rule.

use dcatch_detect::find_candidates;
use dcatch_hb::{HbAnalysis, HbConfig};
use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder, Value};
use dcatch_sim::{SimConfig, Topology, World};
use dcatch_trigger::{plan_candidate, trigger_candidate, PlacementRule, Verdict};

fn analyze(p: &Program, topo: &Topology, seed: u64) -> (SimConfig, HbAnalysis) {
    let cfg = SimConfig::default().with_seed(seed).with_full_tracing();
    let run = World::run_once(p, topo, cfg.clone()).unwrap();
    assert!(run.failures.is_empty(), "{:?}", run.failures);
    (
        cfg,
        HbAnalysis::build(run.trace, &HbConfig::default()).unwrap(),
    )
}

/// A racing statement executed many times under one callstack: placement
/// rule 4 moves the request point to a remote causal ancestor, and the
/// coordination still succeeds.
#[test]
fn many_instance_race_moves_to_remote_ancestor() {
    let mut pb = ProgramBuilder::new();
    // server-side: a polling RPC touches `status` on every call (many
    // dynamic instances); a client-triggered RPC writes it once
    pb.func("poll", &[], FuncKind::RpcHandler, |b| {
        b.read("s", "status");
        b.ret(Expr::local("s"));
    });
    pb.func("set_status", &["v"], FuncKind::RpcHandler, |b| {
        b.write("status", Expr::local("v"));
        b.if_(Expr::local("v").eq(Expr::val("BROKEN")), |b| {
            b.log_fatal("status corrupted");
        });
        b.ret(Expr::val(true));
    });
    pb.func("poller", &["srv"], FuncKind::Regular, |b| {
        b.assign("i", Expr::val(0));
        b.while_(Expr::local("i").lt(Expr::val(8)), |b| {
            b.rpc("s", Expr::local("srv"), "poll", vec![]);
            b.assign("i", Expr::local("i").add(Expr::val(1)));
        });
    });
    pb.func("setter", &["srv"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(30));
        b.rpc_void(Expr::local("srv"), "set_status", vec![Expr::val("ok")]);
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    let srv = {
        let mut nb = topo.node("server");
        nb.rpc_workers(3);
        nb.id()
    };
    topo.node("poller_node")
        .entry("poller", vec![Value::Node(srv)]);
    topo.node("setter_node")
        .entry("setter", vec![Value::Node(srv)]);

    let (cfg, hb) = analyze(&p, &topo, 77);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "status")
        .expect("status candidate");
    let plan = plan_candidate(c, &hb);
    assert!(
        plan.rules
            .iter()
            .flatten()
            .any(|r| *r == PlacementRule::RemoteAncestor),
        "{plan:#?}"
    );
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert!(
        report.runs.iter().any(|r| r.coordinated),
        "rule-4 placement must coordinate: {report:#?}"
    );
    assert_eq!(report.verdict, Verdict::BenignRace, "{report:#?}");
}

/// When the analyzed placement cannot coordinate, the driver retries with
/// the naive direct plan and records the fallback.
#[test]
fn direct_fallback_is_recorded() {
    // handlers on the same single-consumer queue whose enqueues happen in
    // one task: enqueue-site placement can never hold both (one task
    // cannot own both sides), so the driver falls back to direct placement
    let mut pb = ProgramBuilder::new();
    pb.func("main", &[], FuncKind::Regular, |b| {
        b.enqueue("q", "h1", vec![]);
        b.enqueue("q", "h2", vec![]);
    });
    pb.func("h1", &[], FuncKind::EventHandler, |b| {
        b.write("cell", Expr::val(1));
    });
    pb.func("h2", &[], FuncKind::EventHandler, |b| {
        b.write("cell", Expr::val(2));
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    topo.node("n").entry("main", vec![]).queue("q", 2);

    let (cfg, hb) = analyze(&p, &topo, 5);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "cell")
        .expect("cell candidate");
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    // multi-consumer queue → rule 1 does not fire → plan is direct, and
    // the two handlers coordinate directly
    assert!(report.runs.iter().any(|r| r.coordinated), "{report:#?}");
    assert_eq!(report.verdict, Verdict::BenignRace);
}

/// Two socket messages handled by the same single-worker pool: rule 2
/// moves the request points to the senders.
#[test]
fn same_socket_worker_placement_moves_to_senders() {
    let mut pb = ProgramBuilder::new();
    pb.func(
        "sender",
        &["peer", "delay", "val"],
        FuncKind::Regular,
        |b| {
            b.sleep(Expr::local("delay"));
            b.socket_send(Expr::local("peer"), "on_msg", vec![Expr::local("val")]);
        },
    );
    pb.func("on_msg", &["v"], FuncKind::SocketHandler, |b| {
        b.write("inbox", Expr::local("v"));
    });
    let p = pb.build().unwrap();
    let mut topo = Topology::new();
    let peer = {
        let mut nb = topo.node("server");
        nb.socket_workers(1);
        nb.id()
    };
    topo.node("a").entry(
        "sender",
        vec![Value::Node(peer), Value::Int(5), Value::Str("x".into())],
    );
    topo.node("b").entry(
        "sender",
        vec![Value::Node(peer), Value::Int(40), Value::Str("y".into())],
    );

    let (cfg, hb) = analyze(&p, &topo, 9);
    let candidates = find_candidates(&hb);
    let c = candidates
        .iter()
        .find(|c| c.object() == "inbox")
        .expect("inbox candidate");
    let plan = plan_candidate(c, &hb);
    assert!(
        plan.rules
            .iter()
            .flatten()
            .any(|r| *r == PlacementRule::RpcCaller),
        "same-worker socket handlers must move to senders: {plan:#?}"
    );
    let report = trigger_candidate(&p, &topo, &cfg, c, &hb);
    assert!(report.runs.iter().any(|r| r.coordinated), "{report:#?}");
}
