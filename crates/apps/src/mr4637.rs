//! MR-4637 — Hadoop MapReduce: job-master crash when a task-attempt
//! commit races with a job kill.
//!
//! Workload (Table 3): startup + wordcount, killed by the client before
//! completion. Topology: Client, AM, NM.
//!
//! The AM processes task-attempt events on a *multi-consumer* pool (the
//! real MapReduce has several event-handling threads per queue, Figure 4),
//! so two handlers can interleave. The commit handler checks the attempt
//! state and crashes the job master (local explicit error, LE) when it
//! finds the attempt already killed — an order violation (OV): the commit
//! event was supposed to be handled before the kill arrived.

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the MR-4637 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- AM ----------------------------------------------------------------
    // task-attempt bookkeeping, racing on the attempt_states map
    pb.func("task_done", &["aid"], FuncKind::RpcHandler, |b| {
        b.enqueue("attempt_pool", "attempt_commit", vec![Expr::local("aid")]);
        b.ret(Expr::val(true));
    });
    pb.func("kill_job2", &["aid"], FuncKind::RpcHandler, |b| {
        b.enqueue("attempt_pool", "attempt_kill", vec![Expr::local("aid")]);
        b.ret(Expr::val(true));
    });
    pb.func("attempt_commit", &["aid"], FuncKind::EventHandler, |b| {
        b.map_get("s", "attempt_states", Expr::local("aid"));
        b.if_(Expr::local("s").eq(Expr::val("KILLED")), |b| {
            // the real bug: TaskAttemptImpl transitions COMMIT_PENDING
            // from an illegal state and the AM dies
            b.abort("InvalidStateTransition: commit of killed attempt");
        });
        b.map_put("attempt_states", Expr::local("aid"), Expr::val("COMMITTED"));
    });
    pb.func("attempt_kill", &["aid"], FuncKind::EventHandler, |b| {
        b.map_put("attempt_states", Expr::local("aid"), Expr::val("KILLED"));
    });
    // work distribution with the usual polling container (Table 1's
    // pull-based custom synchronization)
    pb.func("publish_work", &["aid"], FuncKind::EventHandler, |b| {
        b.map_put("work_queue", Expr::local("aid"), Expr::val("split_0"));
    });
    pb.func("fetch_work", &["aid"], FuncKind::RpcHandler, |b| {
        b.map_get("w", "work_queue", Expr::local("aid"));
        b.ret(Expr::local("w"));
    });
    pb.func("am_submit", &["aid"], FuncKind::RpcHandler, |b| {
        b.enqueue("attempt_pool", "publish_work", vec![Expr::local("aid")]);
        b.ret(Expr::val(true));
    });

    // ---- NM ----------------------------------------------------------------
    pb.func(
        "nm_start_attempt",
        &["aid", "am"],
        FuncKind::RpcHandler,
        |b| {
            b.spawn_detached(
                "attempt_runner",
                vec![Expr::local("aid"), Expr::local("am")],
            );
            b.ret(Expr::val(true));
        },
    );
    pb.func("attempt_runner", &["aid", "am"], FuncKind::Regular, |b| {
        b.assign("got", Expr::val(false));
        b.retry_while(Expr::local("got").not(), |b| {
            b.rpc(
                "w",
                Expr::local("am"),
                "fetch_work",
                vec![Expr::local("aid")],
            );
            b.assign("got", Expr::local("w").ne(Expr::null()));
            b.sleep(Expr::val(3));
        });
        b.write("attempt_input", Expr::local("w"));
        // finish quickly and ask the AM to commit
        b.sleep(Expr::val(10));
        b.rpc_void(Expr::local("am"), "task_done", vec![Expr::local("aid")]);
    });

    // ---- Client ------------------------------------------------------------
    pb.func("client2_main", &["am", "nm"], FuncKind::Regular, |b| {
        b.rpc_void(Expr::local("am"), "am_submit", vec![Expr::val("a1")]);
        b.rpc_void(
            Expr::local("nm"),
            "nm_start_attempt",
            vec![Expr::val("a1"), Expr::local("am")],
        );
        // kill late: the correct run commits before the kill event
        b.sleep(Expr::val(260));
        b.rpc_void(Expr::local("am"), "kill_job2", vec![Expr::val("a1")]);
    });

    // AM-side counters read by a monitor with warn-only impact → pruned
    noise::stats_noise(&mut pb, "am", FuncKind::RpcHandler, "attempt_pool");
    pb.func("nm_reporter", &["am"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(15));
        b.rpc_void(Expr::local("am"), "am_stat_update", vec![Expr::val(1)]);
        b.sleep(Expr::val(15));
        b.rpc_void(Expr::local("am"), "am_stat_update", vec![Expr::val(2)]);
    });
    // job phase guarded by an impossible crash → a benign report
    noise::benign_guard(&mut pb, "job", "attempt_pool");
    pb.func("phase_writer", &["aid"], FuncKind::EventHandler, |b| {
        b.write("job_phase", Expr::val("RUNNING"));
    });
    pb.func("am_phase_kick", &["am"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(8));
        b.rpc_void(Expr::local("am"), "enqueue_phase", vec![]);
    });
    pb.func("enqueue_phase", &[], FuncKind::RpcHandler, |b| {
        b.enqueue("attempt_pool", "phase_writer", vec![Expr::val("a1")]);
        b.ret(Expr::val(true));
    });

    noise::local_churn(&mut pb, "spill_sort2", 100 * i64::from(scale));
    noise::local_churn(&mut pb, "output_commit_scan", 70 * i64::from(scale));

    let program = pb.build().expect("MR-4637 program must build");

    let mut topology = Topology::new();
    let am = {
        let mut nb = topology.node("AM");
        nb.queue("attempt_pool", 2).rpc_workers(3);
        nb.entry("job_phase_kicker", vec![]);
        nb.entry("am_stat_kicker", vec![]);
        nb.id()
    };
    let nm = {
        let mut nb = topology.node("NM");
        nb.rpc_workers(2);
        nb.entry("nm_reporter", vec![Value::Node(am)]);
        nb.entry("am_phase_kick", vec![Value::Node(am)]);
        nb.id()
    };
    topology
        .node("Client")
        .entry("client2_main", vec![Value::Node(am), Value::Node(nm)]);

    topology.nodes[0]
        .entries
        .push(("spill_sort2".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("output_commit_scan".to_owned(), vec![]));

    Benchmark {
        id: "MR-4637",
        system: System::MapReduce,
        workload: "startup + wordcount",
        symptom: "Job Master Crash",
        error: ErrorPattern::LocalExplicit,
        root: RootCause::OrderViolation,
        program,
        topology,
        seed: 4_637,
        bug_objects: vec!["attempt_states"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_commits_before_kill() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        assert!(run.completed);
    }
}
