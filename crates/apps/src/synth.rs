//! Seeded generative fuzzer for distributed-protocol scenarios with
//! *planted* OV/AV bugs (ROADMAP item 3: an unbounded test bed beyond the
//! seven hand-written TaxDC miniatures).
//!
//! [`ScenarioSpec::from_params`] deterministically derives a scenario —
//! protocol, scale, planted bugs, noise mix, fault plan — from a seed;
//! [`generate`] lowers the spec to an IR [`Benchmark`] plus ground truth:
//! the exact `(StmtId, StmtId)` access pairs of every planted bug, known
//! by construction because the builder hands the ids back while the
//! gadget is assembled. The batch runner in `dcatch-core` scores pipeline
//! verdicts against this truth into a recall/precision report, and the
//! scenario shrinker walks [`ScenarioSpec::shrink_steps`] to minimize any
//! scenario whose verdicts disagree with the plant.
//!
//! Design invariants the generator maintains (so that every natural run
//! is failure-free — DCatch predicts bugs from *correct* runs, §1):
//!
//! * protocol traffic uses per-`(client, round)` or per-`(member, round)`
//!   map keys, so the only conflicting concurrent accesses are the ones
//!   deliberately planted (plus the reusable noise patterns);
//! * planted gadgets separate their racing accesses by ≥ 200 ticks of
//!   natural-run slack, while generated fault plans only perturb delivery
//!   by single-digit step delays, socket duplicates of idempotent
//!   handlers, and inert RPC timeouts — enough to engage the fault
//!   engine, never enough to flip the natural order;
//! * every per-element attribute (bug shape, noise flags, fault lines)
//!   draws from its own sub-seed, so dropping one element during
//!   shrinking does not reshuffle the rest of the scenario.

use dcatch_model::{Expr, FuncKind, NodeId, ProgramBuilder, StmtId, Value};
use dcatch_obs::rng::SmallRng;
use dcatch_obs::Json;
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Interns a generated string for `Benchmark`'s `&'static str` fields.
/// Each scenario leaks a handful of short ids — bounded and deliberate:
/// soak runs generate thousands of scenarios and leak a few kilobytes,
/// which is cheaper than threading owned strings through every consumer
/// of the seven hand-written benchmarks.
fn intern(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// The classic protocols the generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// Workers campaign via sockets; a tracker pull-syncs on the vote map
    /// (exercising Rule-Mpull / the loop-sync stage) and announces.
    LeaderElection,
    /// Clients submit transactions by RPC; the coordinator fans
    /// prepare/commit RPCs out to participants from an event handler.
    TwoPhaseCommit,
    /// Clients put by RPC; the primary applies and replicates to backups
    /// over sockets.
    PrimaryBackup,
    /// Members push per-round digests to ring neighbours over sockets.
    Gossip,
}

impl Protocol {
    /// All protocols, in a fixed order.
    pub fn all() -> [Protocol; 4] {
        [
            Protocol::LeaderElection,
            Protocol::TwoPhaseCommit,
            Protocol::PrimaryBackup,
            Protocol::Gossip,
        ]
    }

    /// Short CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::LeaderElection => "le",
            Protocol::TwoPhaseCommit => "2pc",
            Protocol::PrimaryBackup => "pb",
            Protocol::Gossip => "gossip",
        }
    }

    /// Parses a CLI/JSON name (case-insensitive).
    pub fn parse(s: &str) -> Option<Protocol> {
        match s.to_ascii_lowercase().as_str() {
            "le" | "leader-election" => Some(Protocol::LeaderElection),
            "2pc" | "two-phase-commit" => Some(Protocol::TwoPhaseCommit),
            "pb" | "primary-backup" => Some(Protocol::PrimaryBackup),
            "gossip" => Some(Protocol::Gossip),
            _ => None,
        }
    }

    /// Whether client→hub and gadget traffic travels over RPC (`true`) or
    /// sockets (`false`).
    fn rpc_based(self) -> bool {
        matches!(self, Protocol::TwoPhaseCommit | Protocol::PrimaryBackup)
    }
}

/// Generator inputs: the seed plus optional overrides for anything the
/// seed would otherwise choose.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthParams {
    /// Scenario seed; the sole source of randomness.
    pub seed: u64,
    /// Protocol override.
    pub protocol: Option<Protocol>,
    /// Worker/participant node count override (min 2).
    pub workers: Option<u32>,
    /// Client thread count override (min 1) — clients drive the noise
    /// generator (op traffic, stat updates, local churn).
    pub clients: Option<u32>,
    /// Message fan-out override (clamped to the worker count).
    pub fan_out: Option<u32>,
    /// Exact planted-bug count override (otherwise 0..=2 by seed).
    pub bugs: Option<u32>,
}

/// One planted bug: kind, the worker node hosting the racing handlers,
/// and the natural-run gap (ticks) between the ordered accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSpec {
    /// Stable index within the scenario; names the object `synth_bug_{i}`.
    pub index: u32,
    /// OV or AV.
    pub kind: RootCause,
    /// Worker node (1-based) hosting the gadget handlers.
    pub host: u32,
    /// Checker-side delay: how long after boot the checking access runs.
    pub gap: u32,
}

/// A fully-determined scenario: everything [`generate`] needs, and the
/// unit the shrinker minimizes. Serializes to JSON for quarantined
/// replayable cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Protocol family.
    pub protocol: Protocol,
    /// Scenario seed (also the simulator seed of the natural run).
    pub seed: u64,
    /// Worker/participant nodes (≥ 2). Node 0 is the hub, workers are
    /// 1..=workers, the client/driver node is workers+1.
    pub workers: u32,
    /// Client threads (≥ 1).
    pub clients: u32,
    /// Message fan-out (1..=workers).
    pub fan_out: u32,
    /// Protocol rounds each client drives (≥ 1).
    pub rounds: u32,
    /// Local-churn iterations on the client node (≥ 0).
    pub churn_iters: i64,
    /// Planted bugs (possibly empty).
    pub bugs: Vec<BugSpec>,
    /// Include the SP-prunable stats-counter noise pattern.
    pub stats_noise: bool,
    /// Include the benign phase-guard noise pattern.
    pub benign_noise: bool,
    /// Include the quorum-barrier pattern (serial verdicts).
    pub serial_noise: bool,
    /// Generated fault plan text (parseable by `FaultPlan::parse`; may be
    /// empty).
    pub fault_plan: String,
}

fn sub_rng(seed: u64, tag: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl ScenarioSpec {
    /// Deterministically derives a scenario from the params. Every
    /// element draws from a sub-seed of `params.seed`, so two specs with
    /// the same seed are identical field-for-field.
    pub fn from_params(params: &SynthParams) -> ScenarioSpec {
        let seed = params.seed;
        let mut shape = sub_rng(seed, 1);
        let protocol = params
            .protocol
            .unwrap_or_else(|| Protocol::all()[shape.gen_range(4)]);
        let workers = params
            .workers
            .unwrap_or(2 + shape.gen_range(3) as u32)
            .max(2);
        let clients = params
            .clients
            .unwrap_or(1 + shape.gen_range(3) as u32)
            .max(1);
        let fan_out = params
            .fan_out
            .unwrap_or(1 + shape.gen_range(workers as usize) as u32)
            .clamp(1, workers);
        let rounds = 1 + shape.gen_range(3) as u32;
        let churn_iters = 40 + shape.gen_range(4) as i64 * 20;

        let bug_count = params.bugs.unwrap_or_else(|| shape.gen_range(3) as u32);
        let bugs = (0..bug_count)
            .map(|i| {
                let mut r = sub_rng(seed, 0xB0_6000 + u64::from(i));
                BugSpec {
                    index: i,
                    kind: if r.gen_bool() {
                        RootCause::OrderViolation
                    } else {
                        RootCause::AtomicityViolation
                    },
                    host: 1 + r.gen_range(workers as usize) as u32,
                    gap: 220 + r.gen_range(5) as u32 * 20,
                }
            })
            .collect();

        let mut nz = sub_rng(seed, 0x4015_E000);
        let stats_noise = nz.gen_bool();
        let benign_noise = nz.gen_bool();
        let serial_noise = nz.gen_bool();

        ScenarioSpec {
            protocol,
            seed,
            workers,
            clients,
            fan_out,
            rounds,
            churn_iters,
            bugs,
            stats_noise,
            benign_noise,
            serial_noise,
            fault_plan: gen_fault_plan(seed, protocol, workers),
        }
    }

    /// Human-readable scenario id, stable per (protocol, seed).
    pub fn id(&self) -> String {
        format!(
            "SYNTH-{}-s{}",
            self.protocol.name().to_ascii_uppercase(),
            self.seed
        )
    }

    /// Size metric the shrinker minimizes. Every [`shrink_steps`]
    /// candidate is strictly smaller than its parent under this metric.
    ///
    /// [`shrink_steps`]: ScenarioSpec::shrink_steps
    pub fn size(&self) -> usize {
        let fault_lines = self
            .fault_plan
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        self.workers as usize
            + self.clients as usize
            + self.fan_out as usize
            + self.rounds as usize
            + self.bugs.len() * 3
            + usize::from(self.stats_noise)
            + usize::from(self.benign_noise)
            + usize::from(self.serial_noise)
            + fault_lines
            + usize::try_from(self.churn_iters).unwrap_or(0)
    }

    /// Single-step shrink candidates, in a fixed exploration order:
    /// drop a planted bug (last first), drop a noise pattern, empty the
    /// fault plan, shed a client / a round / churn, narrow the fan-out,
    /// drop the highest bug-free worker. Each candidate is strictly
    /// smaller than `self` per [`ScenarioSpec::size`].
    pub fn shrink_steps(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        for i in (0..self.bugs.len()).rev() {
            let mut s = self.clone();
            s.bugs.remove(i);
            out.push(s);
        }
        if self.stats_noise {
            let mut s = self.clone();
            s.stats_noise = false;
            out.push(s);
        }
        if self.benign_noise {
            let mut s = self.clone();
            s.benign_noise = false;
            out.push(s);
        }
        if self.serial_noise {
            let mut s = self.clone();
            s.serial_noise = false;
            out.push(s);
        }
        if self.fault_plan.lines().any(|l| !l.trim().is_empty()) {
            let mut s = self.clone();
            s.fault_plan = String::new();
            out.push(s);
        }
        if self.clients > 1 {
            let mut s = self.clone();
            s.clients -= 1;
            out.push(s);
        }
        if self.rounds > 1 {
            let mut s = self.clone();
            s.rounds -= 1;
            out.push(s);
        }
        if self.churn_iters > 0 {
            let mut s = self.clone();
            s.churn_iters /= 2;
            out.push(s);
        }
        if self.fan_out > 1 {
            let mut s = self.clone();
            s.fan_out -= 1;
            out.push(s);
        }
        if self.workers > 2 && self.bugs.iter().all(|b| b.host < self.workers) {
            let mut s = self.clone();
            s.workers -= 1;
            s.fan_out = s.fan_out.min(s.workers);
            out.push(s);
        }
        out
    }

    /// JSON form — the quarantine/replay format.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::Str(self.protocol.name().to_owned())),
            ("seed", Json::UInt(self.seed)),
            ("workers", Json::UInt(u64::from(self.workers))),
            ("clients", Json::UInt(u64::from(self.clients))),
            ("fan_out", Json::UInt(u64::from(self.fan_out))),
            ("rounds", Json::UInt(u64::from(self.rounds))),
            (
                "churn_iters",
                Json::UInt(u64::try_from(self.churn_iters).unwrap_or(0)),
            ),
            (
                "bugs",
                Json::Arr(
                    self.bugs
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("index", Json::UInt(u64::from(b.index))),
                                ("kind", Json::Str(b.kind.abbrev().to_owned())),
                                ("host", Json::UInt(u64::from(b.host))),
                                ("gap", Json::UInt(u64::from(b.gap))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("stats_noise", Json::Bool(self.stats_noise)),
            ("benign_noise", Json::Bool(self.benign_noise)),
            ("serial_noise", Json::Bool(self.serial_noise)),
            ("fault_plan", Json::Str(self.fault_plan.clone())),
        ])
    }

    /// Parses the JSON form written by [`ScenarioSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<ScenarioSpec, String> {
        let str_field = |k: &str| -> Result<&str, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("spec field `{k}` missing or not a string"))
        };
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("spec field `{k}` missing or not a number"))
        };
        let flag = |k: &str| -> Result<bool, String> {
            doc.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("spec field `{k}` missing or not a bool"))
        };
        let proto_name = str_field("protocol")?;
        let protocol = Protocol::parse(proto_name)
            .ok_or_else(|| format!("unknown protocol `{proto_name}`"))?;
        let bugs_json = doc
            .get("bugs")
            .and_then(Json::as_arr)
            .ok_or_else(|| "spec field `bugs` missing or not an array".to_owned())?;
        let mut bugs = Vec::new();
        for (i, b) in bugs_json.iter().enumerate() {
            let bnum = |k: &str| -> Result<u64, String> {
                b.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("bug #{i}: field `{k}` missing or not a number"))
            };
            let kind = match b.get("kind").and_then(Json::as_str) {
                Some("OV") => RootCause::OrderViolation,
                Some("AV") => RootCause::AtomicityViolation,
                other => return Err(format!("bug #{i}: bad kind {other:?}")),
            };
            bugs.push(BugSpec {
                index: u32::try_from(bnum("index")?).map_err(|e| e.to_string())?,
                kind,
                host: u32::try_from(bnum("host")?).map_err(|e| e.to_string())?,
                gap: u32::try_from(bnum("gap")?).map_err(|e| e.to_string())?,
            });
        }
        Ok(ScenarioSpec {
            protocol,
            seed: num("seed")?,
            workers: u32::try_from(num("workers")?).map_err(|e| e.to_string())?,
            clients: u32::try_from(num("clients")?).map_err(|e| e.to_string())?,
            fan_out: u32::try_from(num("fan_out")?).map_err(|e| e.to_string())?,
            rounds: u32::try_from(num("rounds")?).map_err(|e| e.to_string())?,
            churn_iters: i64::try_from(num("churn_iters")?).map_err(|e| e.to_string())?,
            bugs,
            stats_noise: flag("stats_noise")?,
            benign_noise: flag("benign_noise")?,
            serial_noise: flag("serial_noise")?,
            fault_plan: str_field("fault_plan")?.to_owned(),
        })
    }
}

/// Generates the scenario's fault plan: single-digit step delays, socket
/// duplicates of idempotent handlers, and an inert RPC timeout. Never
/// drops, crashes, or panics — the natural run must stay correct.
fn gen_fault_plan(seed: u64, protocol: Protocol, workers: u32) -> String {
    use dcatch_sim::{ChannelKind, FaultPlan, MessageAction, MessageFault};
    let mut r = sub_rng(seed, 0xFA_0170);
    let mut plan = FaultPlan::default();
    if r.gen_bool() {
        plan = plan.with_message(
            MessageFault::new(
                ChannelKind::Any,
                MessageAction::Delay(1 + r.gen_range(6) as u64),
            )
            .nth(1 + r.gen_range(3) as u64),
        );
    }
    if r.gen_ratio(1, 3) {
        let kind = if protocol.rpc_based() {
            ChannelKind::RpcReply
        } else {
            ChannelKind::Socket
        };
        plan = plan.with_message(
            MessageFault::new(kind, MessageAction::Delay(1 + r.gen_range(4) as u64))
                .from_node(NodeId(workers + 1)),
        );
    }
    if !protocol.rpc_based() && r.gen_ratio(1, 3) {
        // duplicate a client→hub socket message; hub handlers key traffic
        // per (client, round), so redelivery is idempotent
        plan = plan.with_message(
            MessageFault::new(ChannelKind::Socket, MessageAction::Duplicate)
                .to_node(NodeId(0))
                .nth(1 + r.gen_range(2) as u64),
        );
    }
    if r.gen_bool() {
        plan = plan.with_rpc_timeout(None, 3_000 + r.gen_range(4) as u64 * 500);
    }
    plan.to_text()
}

/// Ground truth for one planted bug: the object it races on and every
/// `(StmtId, StmtId)` access pair (canonically ordered, matching
/// `Candidate::static_pair`) whose Harmful confirmation counts as
/// detecting it.
#[derive(Debug, Clone)]
pub struct PlantedBug {
    /// Bug index within the scenario.
    pub index: u32,
    /// OV or AV.
    pub kind: RootCause,
    /// The raced object (`synth_bug_{index}`).
    pub object: String,
    /// Acceptable detected pairs: OV plants one (write, read) pair; AV
    /// plants two (the read against each write of the non-atomic
    /// section).
    pub pairs: Vec<(StmtId, StmtId)>,
}

/// A generated scenario: the spec it came from, the runnable benchmark,
/// and the planted ground truth.
#[derive(Debug, Clone)]
pub struct SynthScenario {
    /// The generating spec.
    pub spec: ScenarioSpec,
    /// The runnable benchmark (natural run is correct under its seed).
    pub bench: Benchmark,
    /// Ground-truth planted bugs (empty for bug-free scenarios).
    pub truth: Vec<PlantedBug>,
}

fn canon(a: StmtId, b: StmtId) -> (StmtId, StmtId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn node(n: u32) -> Expr {
    Expr::val(Value::Node(NodeId(n)))
}

/// Sends `func(args)` from the current thread to `to` over the
/// protocol's channel.
fn send(b: &mut dcatch_model::BlockBuilder<'_>, rpc: bool, to: Expr, func: &str, args: Vec<Expr>) {
    if rpc {
        b.rpc_void(to, func, args);
    } else {
        b.socket_send(to, func, args);
    }
}

/// Lowers a spec to a runnable benchmark plus ground truth.
pub fn generate(spec: &ScenarioSpec) -> SynthScenario {
    let rpc = spec.protocol.rpc_based();
    let via = if rpc {
        FuncKind::RpcHandler
    } else {
        FuncKind::SocketHandler
    };
    let hub = 0u32;
    let client_node = spec.workers + 1;
    let mut pb = ProgramBuilder::new();
    let mut truth: Vec<PlantedBug> = Vec::new();

    // ---- planted bug gadgets (hosted on worker nodes) ----------------------
    for bug in &spec.bugs {
        let i = bug.index;
        let obj = format!("synth_bug_{i}");
        match bug.kind {
            RootCause::OrderViolation => {
                // OV: a checker that throws if it observes the pre-write
                // state. Natural runs order write (≈15 ticks) far before
                // read (≥ gap); the pipeline must still flag the pair and
                // confirm it Harmful by forcing read-before-write.
                let mut w = None;
                pb.func(format!("synth_set_{i}"), &["v"], via, |b| {
                    w = Some(b.write(&obj, Expr::local("v")));
                    if rpc {
                        b.ret(Expr::val(true));
                    }
                });
                let mut r = None;
                pb.func(format!("synth_chk_{i}"), &[], via, |b| {
                    r = Some(b.read("p", &obj));
                    b.if_(Expr::local("p").eq(Expr::null()), |b| {
                        b.throw("NullPointerException");
                    });
                    if rpc {
                        b.ret(Expr::val(true));
                    }
                });
                let (w, r) = (
                    w.expect("OV gadget body registered its write"),
                    r.expect("OV gadget body registered its read"),
                );
                truth.push(PlantedBug {
                    index: i,
                    kind: bug.kind,
                    object: obj.clone(),
                    pairs: vec![canon(w, r)],
                });
                pb.func(
                    format!("synth_setter_{i}"),
                    &["h"],
                    FuncKind::Regular,
                    |b| {
                        b.sleep(Expr::val(10 + i64::from(i) * 3));
                        send(
                            b,
                            rpc,
                            Expr::local("h"),
                            &format!("synth_set_{i}"),
                            vec![Expr::val("ready")],
                        );
                    },
                );
            }
            RootCause::AtomicityViolation => {
                // AV: a two-write non-atomic section (BUSY…OK, 40-tick
                // window) against a checker that throws on the transient
                // state. Natural runs read OK; forcing the read into the
                // window reads BUSY.
                let mut w_busy = None;
                let mut w_ok = None;
                pb.func(format!("synth_begin_{i}"), &[], via, |b| {
                    w_busy = Some(b.write(&obj, Expr::val("BUSY")));
                    b.sleep(Expr::val(40));
                    w_ok = Some(b.write(&obj, Expr::val("OK")));
                    if rpc {
                        b.ret(Expr::val(true));
                    }
                });
                let mut r = None;
                pb.func(format!("synth_chk_{i}"), &[], via, |b| {
                    r = Some(b.read("p", &obj));
                    b.if_(Expr::local("p").eq(Expr::val("BUSY")), |b| {
                        b.throw("IllegalStateException");
                    });
                    if rpc {
                        b.ret(Expr::val(true));
                    }
                });
                let (w_busy, w_ok, r) = (
                    w_busy.expect("AV gadget body registered its BUSY write"),
                    w_ok.expect("AV gadget body registered its OK write"),
                    r.expect("AV gadget body registered its read"),
                );
                truth.push(PlantedBug {
                    index: i,
                    kind: bug.kind,
                    object: obj.clone(),
                    pairs: vec![canon(w_busy, r), canon(w_ok, r)],
                });
                pb.func(
                    format!("synth_setter_{i}"),
                    &["h"],
                    FuncKind::Regular,
                    |b| {
                        b.sleep(Expr::val(10 + i64::from(i) * 3));
                        send(
                            b,
                            rpc,
                            Expr::local("h"),
                            &format!("synth_begin_{i}"),
                            vec![],
                        );
                    },
                );
            }
        }
        let gap = i64::from(bug.gap);
        pb.func(
            format!("synth_checker_{i}"),
            &["h"],
            FuncKind::Regular,
            move |b| {
                b.sleep(Expr::val(gap));
                send(b, rpc, Expr::local("h"), &format!("synth_chk_{i}"), vec![]);
            },
        );
    }

    // ---- client driver: per-(client, round) keyed op traffic ---------------
    let op_handler = match spec.protocol {
        Protocol::TwoPhaseCommit => "tpc_submit",
        Protocol::PrimaryBackup => "pb_put",
        _ => "synth_client_op",
    };
    {
        let rounds = spec.rounds;
        let stats = spec.stats_noise;
        let handler = op_handler.to_owned();
        pb.func(
            "synth_client",
            &["hub", "ci", "d"],
            FuncKind::Regular,
            move |b| {
                b.sleep(Expr::local("d"));
                for r in 0..rounds {
                    let key = Expr::local("ci").concat(Expr::val(format!("_r{r}")));
                    if rpc {
                        b.rpc(&format!("ok{r}"), Expr::local("hub"), &handler, vec![key]);
                    } else {
                        b.socket_send(Expr::local("hub"), &handler, vec![key]);
                    }
                    b.sleep(Expr::val(7));
                }
                if stats {
                    send(
                        b,
                        rpc,
                        Expr::local("hub"),
                        "synth_stat_update",
                        vec![Expr::val(1)],
                    );
                }
            },
        );
    }
    if !matches!(
        spec.protocol,
        Protocol::TwoPhaseCommit | Protocol::PrimaryBackup
    ) {
        let benign = spec.benign_noise;
        pb.func("synth_client_op", &["k"], via, move |b| {
            b.map_put("synth_ops", Expr::local("k"), Expr::val(true));
            if benign {
                b.write("synthb_phase", Expr::val("RUNNING"));
            }
            if rpc {
                b.ret(Expr::val(true));
            }
        });
    }

    // ---- protocol bodies ---------------------------------------------------
    match spec.protocol {
        Protocol::LeaderElection => {
            pb.func(
                "le_campaign",
                &["hub", "wid", "d"],
                FuncKind::Regular,
                |b| {
                    b.sleep(Expr::local("d"));
                    b.socket_send(Expr::local("hub"), "le_vote", vec![Expr::local("wid")]);
                },
            );
            pb.func("le_vote", &["wid"], FuncKind::SocketHandler, |b| {
                b.map_put("le_votes", Expr::local("wid"), Expr::val(true));
            });
            pb.func("le_elected", &["lid"], FuncKind::SocketHandler, |b| {
                b.write("le_seen_leader", Expr::local("lid"));
            });
            // the tracker pull-syncs on the last campaigner's vote — the
            // loop-sync stage must order the matching put before the loop
            // exit (Rule-Mpull) and prune the get/put pair
            let last = i64::from(spec.workers);
            let fan = spec.fan_out;
            pb.func("le_announce", &[], FuncKind::Regular, move |b| {
                b.assign("got", Expr::val(false));
                b.retry_while(Expr::local("got").not(), |b| {
                    b.map_get("v", "le_votes", Expr::val(last));
                    b.assign("got", Expr::local("v").ne(Expr::null()));
                    b.sleep(Expr::val(2));
                });
                b.write("le_leader", Expr::val(1));
                for w in 1..=fan {
                    b.socket_send(node(w), "le_elected", vec![Expr::val(1)]);
                }
            });
        }
        Protocol::TwoPhaseCommit => {
            let benign = spec.benign_noise;
            pb.func("tpc_submit", &["txn"], FuncKind::RpcHandler, move |b| {
                b.enqueue("dispatch", "tpc_run", vec![Expr::local("txn")]);
                if benign {
                    b.write("synthb_phase", Expr::val("RUNNING"));
                }
                b.ret(Expr::val(true));
            });
            let fan = spec.fan_out;
            pb.func("tpc_run", &["txn"], FuncKind::EventHandler, move |b| {
                for p in 1..=fan {
                    b.rpc(
                        &format!("v{p}"),
                        node(p),
                        "tpc_prepare",
                        vec![Expr::local("txn")],
                    );
                }
                for p in 1..=fan {
                    b.rpc_void(node(p), "tpc_commit", vec![Expr::local("txn")]);
                }
                b.map_put("tpc_decided", Expr::local("txn"), Expr::val("COMMIT"));
            });
            pb.func("tpc_prepare", &["txn"], FuncKind::RpcHandler, |b| {
                b.map_put("tpc_prep_log", Expr::local("txn"), Expr::val("READY"));
                b.ret(Expr::val(true));
            });
            pb.func("tpc_commit", &["txn"], FuncKind::RpcHandler, |b| {
                b.map_put("tpc_commit_log", Expr::local("txn"), Expr::val("DONE"));
                b.ret(Expr::val(true));
            });
        }
        Protocol::PrimaryBackup => {
            let benign = spec.benign_noise;
            let fan = spec.fan_out;
            pb.func("pb_put", &["k"], FuncKind::RpcHandler, move |b| {
                b.map_put("pb_store", Expr::local("k"), Expr::val("v"));
                for w in 1..=fan {
                    b.socket_send(node(w), "pb_replicate", vec![Expr::local("k")]);
                }
                if benign {
                    b.write("synthb_phase", Expr::val("RUNNING"));
                }
                b.ret(Expr::val(true));
            });
            pb.func("pb_replicate", &["k"], FuncKind::SocketHandler, |b| {
                b.map_put("pb_replica", Expr::local("k"), Expr::val("v"));
            });
        }
        Protocol::Gossip => {
            // per-member digest pushers with build-time ring neighbours;
            // digests key per (member, round) so redelivery and handler
            // concurrency stay conflict-free
            pb.func("gsp_digest", &["k"], FuncKind::SocketHandler, |b| {
                b.map_put("gsp_view", Expr::local("k"), Expr::val(true));
            });
            for w in 1..=spec.workers {
                let peers: Vec<u32> = (1..spec.workers)
                    .map(|step| 1 + (w - 1 + step) % spec.workers)
                    .take(spec.fan_out as usize)
                    .collect();
                let rounds = spec.rounds;
                pb.func(
                    format!("gsp_member_{w}"),
                    &["d"],
                    FuncKind::Regular,
                    move |b| {
                        b.sleep(Expr::local("d"));
                        for r in 0..rounds {
                            for &p in &peers {
                                b.socket_send(
                                    node(p),
                                    "gsp_digest",
                                    vec![Expr::val(format!("m{w}_r{r}"))],
                                );
                            }
                            b.sleep(Expr::val(6));
                        }
                    },
                );
            }
        }
    }

    // ---- reusable noise patterns -------------------------------------------
    if spec.stats_noise {
        noise::stats_noise(&mut pb, "synth", via, "dispatch");
    }
    if spec.benign_noise {
        noise::benign_guard(&mut pb, "synthb", "dispatch");
    }
    if spec.serial_noise {
        noise::quorum_barrier(&mut pb, "synthq", via);
        pb.func("synth_acker", &["hub", "d"], FuncKind::Regular, move |b| {
            b.sleep(Expr::local("d"));
            send(
                b,
                rpc,
                Expr::local("hub"),
                "synthq_ack",
                vec![Expr::SelfNode],
            );
        });
    }
    noise::local_churn(&mut pb, "synth_churn", spec.churn_iters);

    let program = pb
        .build()
        .unwrap_or_else(|e| panic!("{}: generated program must build: {e:?}", spec.id()));

    // ---- topology ----------------------------------------------------------
    let hub_name = match spec.protocol {
        Protocol::LeaderElection => "Tracker",
        Protocol::TwoPhaseCommit => "Coordinator",
        Protocol::PrimaryBackup => "Primary",
        Protocol::Gossip => "SeedNode",
    };
    let mut topology = Topology::new();
    {
        let mut nb = topology.node(hub_name);
        nb.queue("dispatch", 1).rpc_workers(3).socket_workers(3);
    }
    for w in 1..=spec.workers {
        // two workers per channel so planted handler pairs run
        // concurrently instead of serializing on one thread
        topology
            .node(format!("W{w}"))
            .rpc_workers(2)
            .socket_workers(2);
    }
    topology.node("Client");

    let entry = |topology: &mut Topology, n: u32, func: &str, args: Vec<Value>| {
        topology.nodes[n as usize]
            .entries
            .push((func.to_owned(), args));
    };
    match spec.protocol {
        Protocol::LeaderElection => {
            for w in 1..=spec.workers {
                entry(
                    &mut topology,
                    w,
                    "le_campaign",
                    vec![
                        Value::Node(NodeId(hub)),
                        Value::Int(i64::from(w)),
                        Value::Int(5 + i64::from(w) * 3),
                    ],
                );
            }
            entry(&mut topology, hub, "le_announce", vec![]);
        }
        Protocol::Gossip => {
            for w in 1..=spec.workers {
                entry(
                    &mut topology,
                    w,
                    &format!("gsp_member_{w}"),
                    vec![Value::Int(5 + i64::from(w) * 3)],
                );
            }
        }
        Protocol::TwoPhaseCommit | Protocol::PrimaryBackup => {}
    }
    for c in 0..spec.clients {
        entry(
            &mut topology,
            client_node,
            "synth_client",
            vec![
                Value::Node(NodeId(hub)),
                Value::Str(format!("c{c}")),
                Value::Int(3 + i64::from(c) * 4),
            ],
        );
    }
    for bug in &spec.bugs {
        let host = Value::Node(NodeId(bug.host));
        entry(
            &mut topology,
            client_node,
            &format!("synth_setter_{}", bug.index),
            vec![host.clone()],
        );
        entry(
            &mut topology,
            client_node,
            &format!("synth_checker_{}", bug.index),
            vec![host],
        );
    }
    if spec.stats_noise {
        entry(&mut topology, hub, "synth_stat_kicker", vec![]);
    }
    if spec.benign_noise {
        entry(&mut topology, hub, "synthb_phase_kicker", vec![]);
    }
    if spec.serial_noise {
        entry(
            &mut topology,
            hub,
            "synthq_wait",
            vec![Value::Node(NodeId(1))],
        );
        for (w, d) in [(1u32, 55i64), (2, 85)] {
            entry(
                &mut topology,
                w,
                "synth_acker",
                vec![Value::Node(NodeId(hub)), Value::Int(d)],
            );
        }
    }
    entry(&mut topology, client_node, "synth_churn", vec![]);

    let (error, root) = match spec.bugs.first().map(|b| b.kind) {
        Some(RootCause::OrderViolation) => {
            (ErrorPattern::DistributedExplicit, RootCause::OrderViolation)
        }
        Some(RootCause::AtomicityViolation) => (
            ErrorPattern::DistributedExplicit,
            RootCause::AtomicityViolation,
        ),
        None => (ErrorPattern::LocalExplicit, RootCause::OrderViolation),
    };
    let system = match spec.protocol {
        Protocol::LeaderElection => System::ZooKeeper,
        Protocol::TwoPhaseCommit => System::HBase,
        Protocol::PrimaryBackup => System::MapReduce,
        Protocol::Gossip => System::Cassandra,
    };
    let bench = Benchmark {
        id: intern(spec.id()),
        system,
        workload: "generated protocol scenario",
        symptom: "planted race (ground truth known)",
        error,
        root,
        program,
        topology,
        seed: spec.seed,
        bug_objects: truth.iter().map(|b| intern(b.object.clone())).collect(),
        scale: 1,
    };
    SynthScenario {
        spec: spec.clone(),
        bench,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_sim::{FaultPlan, SimConfig, World};

    #[test]
    fn specs_are_deterministic_per_seed() {
        for seed in [0u64, 1, 7, 42, 1011] {
            let p = SynthParams {
                seed,
                ..SynthParams::default()
            };
            assert_eq!(ScenarioSpec::from_params(&p), ScenarioSpec::from_params(&p));
        }
    }

    #[test]
    fn spec_json_round_trips() {
        for seed in 0..40u64 {
            let spec = ScenarioSpec::from_params(&SynthParams {
                seed,
                ..SynthParams::default()
            });
            let back = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
            assert_eq!(spec, back, "seed {seed}");
        }
    }

    #[test]
    fn generated_fault_plans_parse() {
        for seed in 0..60u64 {
            let spec = ScenarioSpec::from_params(&SynthParams {
                seed,
                ..SynthParams::default()
            });
            FaultPlan::parse(&spec.fault_plan)
                .unwrap_or_else(|e| panic!("seed {seed}: generated plan must parse: {e}"));
        }
    }

    #[test]
    fn shrink_steps_strictly_shrink() {
        for seed in 0..40u64 {
            let spec = ScenarioSpec::from_params(&SynthParams {
                seed,
                bugs: Some(2),
                ..SynthParams::default()
            });
            for (i, s) in spec.shrink_steps().iter().enumerate() {
                assert!(
                    s.size() < spec.size(),
                    "seed {seed} step {i}: {} !< {}",
                    s.size(),
                    spec.size()
                );
                assert!(s.fan_out >= 1 && s.fan_out <= s.workers);
                assert!(s.workers >= 2 && s.clients >= 1 && s.rounds >= 1);
                assert!(s.bugs.iter().all(|b| b.host <= s.workers));
            }
        }
    }

    #[test]
    fn natural_runs_are_correct_across_protocols_and_seeds() {
        for proto in Protocol::all() {
            for seed in [1u64, 7, 42] {
                let spec = ScenarioSpec::from_params(&SynthParams {
                    seed,
                    protocol: Some(proto),
                    bugs: Some(2),
                    ..SynthParams::default()
                });
                let sc = generate(&spec);
                let run = World::run_once(
                    &sc.bench.program,
                    &sc.bench.topology,
                    SimConfig::default().with_seed(sc.bench.seed),
                )
                .unwrap_or_else(|e| panic!("{}: {e}", sc.bench.id));
                assert!(
                    run.failures.is_empty(),
                    "{} natural run must be correct: {:?}",
                    sc.bench.id,
                    run.failures
                );
                assert!(run.completed, "{} must reach quiescence", sc.bench.id);
                assert_eq!(sc.truth.len(), 2, "{}", sc.bench.id);
            }
        }
    }
}
