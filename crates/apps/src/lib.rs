//! Miniature reproductions of the seven TaxDC benchmark applications
//! (paper Table 3).
//!
//! The original DCatch monitors real deployments of Cassandra, HBase,
//! Hadoop MapReduce, and ZooKeeper under seven user-reported
//! failure-triggering workloads. Those systems cannot be instrumented from
//! Rust, so each benchmark is rebuilt as an IR program on the `dcatch-sim`
//! substrate that faithfully reproduces what matters to the detector:
//!
//! * the documented **protocol fragment** containing the root-cause
//!   accesses (e.g. MR-3274's `jMap` put/get/remove around the `getTask`
//!   RPC retry loop — the paper's Figures 1 and 2);
//! * the **communication mechanisms** each system uses (Table 1):
//!   RPC + events for HBase/MapReduce, sockets + events for
//!   Cassandra/ZooKeeper, ZooKeeper-based push synchronization for HBase;
//! * the **error pattern** (local/distributed, explicit/hang) and **root
//!   cause** (order/atomicity violation) of Table 3;
//! * the surrounding **benign races** (states cured by retries or
//!   anti-entropy), **fault-tolerance noise** that static pruning must
//!   remove, and **unmodeled custom synchronization** (quorum barriers à
//!   la `waitForEpoch`) that produces the paper's *serial* reports.
//!
//! Each benchmark's default seed yields a *correct* traced run — DCatch
//! detects the bugs by monitoring correct executions (§7.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ca1011;
mod faults;
mod hb4539;
mod hb4729;
mod mr3274;
mod mr4637;
mod noise;
mod stream;
pub mod synth;
mod zk1144;
mod zk1270;

pub use faults::{fault_scenarios, FaultScenario};
pub use stream::{streambench, streambench_rounds, STREAM_RECORDS_PER_ROUND};

use dcatch_model::{Program, StmtKind};
use dcatch_sim::Topology;

/// Which cloud system a benchmark miniaturizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum System {
    /// Cassandra distributed key-value store.
    Cassandra,
    /// HBase distributed key-value store.
    HBase,
    /// Hadoop MapReduce computing framework.
    MapReduce,
    /// ZooKeeper synchronization service.
    ZooKeeper,
}

impl System {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::Cassandra => "Cassandra",
            System::HBase => "HBase",
            System::MapReduce => "MapReduce",
            System::ZooKeeper => "ZooKeeper",
        }
    }
}

/// Error pattern of Table 3: local/distributed × explicit/hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPattern {
    /// LE — explicit error on the machine of the root-cause accesses.
    LocalExplicit,
    /// LH — hang on the machine of the root-cause accesses.
    LocalHang,
    /// DE — explicit error on a different machine.
    DistributedExplicit,
    /// DH — hang on a different machine.
    DistributedHang,
}

impl ErrorPattern {
    /// Table 3 abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            ErrorPattern::LocalExplicit => "LE",
            ErrorPattern::LocalHang => "LH",
            ErrorPattern::DistributedExplicit => "DE",
            ErrorPattern::DistributedHang => "DH",
        }
    }
}

/// Root cause category of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCause {
    /// OV — order violation.
    OrderViolation,
    /// AV — atomicity violation.
    AtomicityViolation,
}

impl RootCause {
    /// Table 3 abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            RootCause::OrderViolation => "OV",
            RootCause::AtomicityViolation => "AV",
        }
    }
}

/// One reproducible benchmark: the program, its deployment, and the
/// ground-truth metadata of Table 3.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// TaxDC bug id ("MR-3274"…).
    pub id: &'static str,
    /// The system miniaturized.
    pub system: System,
    /// Workload description (Table 3).
    pub workload: &'static str,
    /// Failure symptom (Table 3).
    pub symptom: &'static str,
    /// Error pattern (Table 3).
    pub error: ErrorPattern,
    /// Root cause (Table 3).
    pub root: RootCause,
    /// The IR program.
    pub program: Program,
    /// The deployment.
    pub topology: Topology,
    /// Seed under which the traced run is correct.
    pub seed: u64,
    /// Objects the known root-cause bug races on (ground truth for the
    /// evaluation harness).
    pub bug_objects: Vec<&'static str>,
    /// Workload scale factor used to build this instance (size of the
    /// local-computation churn; 1 for tests, larger for the Table 6/8
    /// measurement harness).
    pub scale: u32,
}

/// Concurrency/communication mechanisms a program uses — the columns of
/// the paper's Table 1, derived from the IR instead of hand-declared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mechanisms {
    /// Synchronous RPC.
    pub rpc: bool,
    /// Asynchronous sockets.
    pub socket: bool,
    /// Custom synchronization protocol (ZooKeeper push, or RPC polled
    /// from a retry loop — pull).
    pub custom: bool,
    /// Multiple threads.
    pub threads: bool,
    /// Asynchronous events.
    pub events: bool,
}

/// Scans a program and its deployment for the mechanisms they use.
pub fn mechanisms(program: &Program, topology: &Topology) -> Mechanisms {
    let mut m = Mechanisms::default();
    // multiple boot threads across the deployment count as multi-threading
    let entries: usize = topology.nodes.iter().map(|n| n.entries.len()).sum();
    if entries > 1 {
        m.threads = true;
    }
    program.for_each_stmt(|_, s| match &s.kind {
        StmtKind::RpcCall { .. } => m.rpc = true,
        StmtKind::SocketSend { .. } => m.socket = true,
        StmtKind::ZkCreate { .. }
        | StmtKind::ZkSetData { .. }
        | StmtKind::ZkDelete { .. }
        | StmtKind::ZkGetData { .. }
        | StmtKind::ZkExists { .. } => m.custom = true,
        StmtKind::Spawn { .. } => m.threads = true,
        StmtKind::Enqueue { .. } => m.events = true,
        _ => {}
    });
    // pull-based custom synchronization: a retry loop whose body performs
    // an RPC
    program.for_each_stmt(|_, s| {
        if let StmtKind::While {
            retry: true, body, ..
        } = &s.kind
        {
            let mut has_rpc = false;
            for b in body {
                b.walk(&mut |x| {
                    if matches!(x.kind, StmtKind::RpcCall { .. }) {
                        has_rpc = true;
                    }
                });
            }
            if has_rpc {
                m.custom = true;
            }
        }
    });
    m
}

/// All seven benchmarks, in Table 3 order, at workload scale 1.
pub fn all_benchmarks() -> Vec<Benchmark> {
    all_benchmarks_scaled(1)
}

/// All seven benchmarks with the given local-computation scale factor.
/// The detector's results are scale-independent (the extra work is pure
/// computation); scale only matters to the measurement harness (Tables 6
/// and 8).
pub fn all_benchmarks_scaled(scale: u32) -> Vec<Benchmark> {
    vec![
        ca1011::benchmark_scaled(scale),
        hb4539::benchmark_scaled(scale),
        hb4729::benchmark_scaled(scale),
        mr3274::benchmark_scaled(scale),
        mr4637::benchmark_scaled(scale),
        zk1144::benchmark_scaled(scale),
        zk1270::benchmark_scaled(scale),
    ]
}

/// Looks a benchmark up by TaxDC id (case-insensitive), at scale 1.
pub fn benchmark(id: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn registry_has_all_seven() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 7);
        let ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        assert_eq!(
            ids,
            vec!["CA-1011", "HB-4539", "HB-4729", "MR-3274", "MR-4637", "ZK-1144", "ZK-1270"]
        );
        assert!(benchmark("mr-3274").is_some());
        assert!(benchmark("XX-0000").is_none());
    }

    #[test]
    fn every_benchmark_runs_correctly_under_its_seed() {
        for b in all_benchmarks() {
            let cfg = SimConfig::default().with_seed(b.seed);
            let run = World::run_once(&b.program, &b.topology, cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", b.id));
            assert!(
                run.failures.is_empty(),
                "{} natural run must be correct: {:?}",
                b.id,
                run.failures
            );
            assert!(run.completed, "{} must reach quiescence", b.id);
            assert!(!run.trace.is_empty(), "{} must produce a trace", b.id);
        }
    }

    #[test]
    fn mechanisms_match_table_1() {
        for b in all_benchmarks() {
            let m = mechanisms(&b.program, &b.topology);
            assert!(m.threads, "{}: all systems are multi-threaded", b.id);
            assert!(m.events, "{}: all systems use events", b.id);
            match b.system {
                System::Cassandra | System::ZooKeeper => {
                    assert!(m.socket, "{}: socket-based per Table 1", b.id);
                    assert!(!m.rpc, "{}: no RPC per Table 1", b.id);
                }
                System::HBase | System::MapReduce => {
                    assert!(m.rpc, "{}: RPC-based per Table 1", b.id);
                    assert!(!m.socket, "{}: no sockets per Table 1", b.id);
                    assert!(m.custom, "{}: custom sync protocol per Table 1", b.id);
                }
            }
        }
    }
}
