//! MR-3274 — Hadoop MapReduce: NM container hangs when a job is killed
//! between task assignment and task retrieval (paper Figures 1 and 2).
//!
//! Workload (Table 3): startup + wordcount, then the client kills the job
//! before it finishes. Topology: Client, AM (Application Master), NM
//! (Node Manager).
//!
//! Protocol fragment:
//!
//! 1. the client submits job `j1` to the AM (`submit_job` RPC); the AM's
//!    Register event handler does `jMap.put(jID, task)`;
//! 2. the AM-side registration also launches a container on the NM, which
//!    polls `getTask(jID)` — an RPC returning `jMap.get(jID)` — in a
//!    retry loop until non-null;
//! 3. the client later cancels the job (`kill_job` RPC); the AM's
//!    UnRegister event handler does `jMap.remove(jID)`.
//!
//! Root-cause races on `jMap` (the paper's exact analysis, §1.2):
//! `get` vs `put` is **benign** thanks to the retry loop (the pull-based
//! synchronization that Rule-Mpull recognizes and prunes); `get` vs
//! `remove` is the **bug**: if the removal lands before the first
//! successful `get`, the container polls null forever — a distributed
//! hang (DH) from an order violation (OV).

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the MR-3274 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- AM ---------------------------------------------------------------
    pb.func("submit_job", &["jid"], FuncKind::RpcHandler, |b| {
        b.enqueue("dispatch", "register_job", vec![Expr::local("jid")]);
        b.ret(Expr::val(true));
    });
    pb.func("register_job", &["jid"], FuncKind::EventHandler, |b| {
        b.map_put("jMap", Expr::local("jid"), Expr::val("wordcount_task"));
        b.map_put("job_phase_table", Expr::local("jid"), Expr::val("RUNNING"));
        b.write("mr_phase", Expr::val("RUNNING"));
    });
    pb.func("kill_job", &["jid"], FuncKind::RpcHandler, |b| {
        b.enqueue("dispatch", "unregister_job", vec![Expr::local("jid")]);
        b.ret(Expr::val(true));
    });
    pb.func("unregister_job", &["jid"], FuncKind::EventHandler, |b| {
        b.map_remove("jMap", Expr::local("jid"));
        b.map_put("job_phase_table", Expr::local("jid"), Expr::val("KILLED"));
    });
    pb.func("get_task", &["jid"], FuncKind::RpcHandler, |b| {
        b.map_get("t", "jMap", Expr::local("jid"));
        b.ret(Expr::local("t"));
    });
    pb.func(
        "report_progress",
        &["jid", "pct"],
        FuncKind::RpcHandler,
        |b| {
            b.map_put("progress", Expr::local("jid"), Expr::local("pct"));
            b.ret(Expr::val(true));
        },
    );
    // AM monitor event: reads progress (warn-only → pruned) and the job
    // phase cell (guarded by an impossible crash → a benign report)
    pb.func("am_monitor_check", &[], FuncKind::EventHandler, |b| {
        b.map_get("p", "progress", Expr::val("j1"));
        b.if_(Expr::local("p").eq(Expr::null()), |b| {
            b.log_warn("no progress reported yet");
        });
        b.read("ph", "mr_phase");
        b.if_(Expr::local("ph").eq(Expr::val("CORRUPT")), |b| {
            b.throw("IllegalStateException");
        });
    });
    pb.func("am_monitor_kicker", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(40));
        b.enqueue("dispatch", "am_monitor_check", vec![]);
    });

    // ---- NM ---------------------------------------------------------------
    pb.func(
        "launch_container",
        &["jid", "am"],
        FuncKind::RpcHandler,
        |b| {
            b.spawn_detached(
                "container_main",
                vec![Expr::local("jid"), Expr::local("am")],
            );
            b.ret(Expr::val(true));
        },
    );
    pb.func("container_main", &["jid", "am"], FuncKind::Regular, |b| {
        // paper Figure 2: while (!getTask(jID)) {}
        b.assign("done", Expr::val(false));
        b.retry_while(Expr::local("done").not(), |b| {
            b.rpc("t", Expr::local("am"), "get_task", vec![Expr::local("jid")]);
            b.assign("done", Expr::local("t").ne(Expr::null()));
            b.sleep(Expr::val(3));
        });
        // run the wordcount task and report back
        b.write("task_input", Expr::local("t"));
        b.rpc_void(
            Expr::local("am"),
            "report_progress",
            vec![Expr::local("jid"), Expr::val(100)],
        );
    });

    // ---- Client -----------------------------------------------------------
    pb.func("submit_thread", &["am"], FuncKind::Regular, |b| {
        b.rpc("ok", Expr::local("am"), "submit_job", vec![Expr::val("j1")]);
    });
    pb.func("client_main", &["am", "nm"], FuncKind::Regular, |b| {
        // the JobClient submits on a helper thread and waits for it
        b.spawn("h", "submit_thread", vec![Expr::local("am")]);
        b.join(Expr::local("h"));
        // task assignment (paper step #1): the container starts polling
        // concurrently with the AM-side registration event
        b.rpc_void(
            Expr::local("nm"),
            "launch_container",
            vec![Expr::val("j1"), Expr::local("am")],
        );
        // the user kills the job before it finishes — but, in the correct
        // traced run, after the container fetched its task
        b.sleep(Expr::val(220));
        b.rpc("ok2", Expr::local("am"), "kill_job", vec![Expr::val("j1")]);
    });

    // commit barrier: AM waits for two NM-side acks before finishing the
    // job — unmodeled custom synchronization producing serial reports
    noise::quorum_barrier(&mut pb, "commit", FuncKind::RpcHandler);
    pb.func("nm_acker", &["am", "delay"], FuncKind::Regular, |b| {
        b.sleep(Expr::local("delay"));
        b.rpc_void(Expr::local("am"), "commit_ack", vec![Expr::SelfNode]);
    });

    noise::local_churn(&mut pb, "spill_sort", 110 * i64::from(scale));
    noise::local_churn(&mut pb, "shuffle_merge", 80 * i64::from(scale));

    let program = pb.build().expect("MR-3274 program must build");

    let mut topology = Topology::new();
    let am = {
        let mut nb = topology.node("AM");
        nb.queue("dispatch", 1).rpc_workers(3);
        nb.entry("am_monitor_kicker", vec![]);

        nb.id()
    };
    let nm = {
        let mut nb = topology.node("NM");
        nb.rpc_workers(2);
        nb.id()
    };
    topology.nodes[am.index()]
        .entries
        .push(("commit_wait".to_owned(), vec![Value::Node(nm)]));
    topology.nodes[nm.index()]
        .entries
        .push(("nm_acker".to_owned(), vec![Value::Node(am), Value::Int(60)]));
    topology.nodes[nm.index()]
        .entries
        .push(("nm_acker".to_owned(), vec![Value::Node(am), Value::Int(90)]));
    topology
        .node("Client")
        .entry("client_main", vec![Value::Node(am), Value::Node(nm)]);

    topology.nodes[0]
        .entries
        .push(("spill_sort".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("shuffle_merge".to_owned(), vec![]));

    Benchmark {
        id: "MR-3274",
        system: System::MapReduce,
        workload: "startup + wordcount",
        symptom: "Hang",
        error: ErrorPattern::DistributedHang,
        root: RootCause::OrderViolation,
        program,
        topology,
        seed: 3_274,
        bug_objects: vec!["jMap"],
        scale,
        // the harmful pair: get_task's map_get vs unregister_job's
        // map_remove; the put/get pair is pruned by Rule-Mpull
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_completes_wordcount() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        // the container fetched its task and reported progress
        assert!(run.trace.count_tag("rc") >= 4, "several RPCs expected");
    }
}
