//! ZK-1270 — ZooKeeper: service unavailable when an epoch acknowledgement
//! races with the leader's epoch bookkeeping.
//!
//! Workload (Table 3): startup / leader election with epoch negotiation.
//! Topology: a leader and two followers over sockets.
//!
//! The leader's election thread records the accepted epoch; follower
//! acknowledgements arrive concurrently and are *dropped* when the epoch
//! is not yet recorded — an order violation (OV). A dropped ack means the
//! leader's `waitForEpoch`-style quorum barrier never reaches its count
//! and the election thread spins forever: service unavailable, local hang
//! (LH).
//!
//! The quorum barrier is also this suite's source of **serial** false
//! positives (§7.2: "ZK has a function waitForEpoch, essentially a
//! distributed barrier… The implementation is complicated and cannot be
//! inferred by existing HB rules"): the loop-synchronization analysis only
//! orders the *last* ack increment before the barrier exit, so the pair
//! (first increment, post-barrier read) survives detection although it is
//! semantically ordered — the triggering module then classifies it serial.
//! The non-atomic ack increment itself is an extra harmful atomicity bug,
//! like the additional bugs the paper found beyond the TaxDC suite.

use dcatch_model::{BinOp, Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the ZK-1270 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- leader ------------------------------------------------------------
    pb.func("zk2_leader_main", &["f1", "f2"], FuncKind::Regular, |b| {
        // announce leadership over the cluster port (the learner handler
        // threads — and the epoch bookkeeping below — race with the acks
        // the followers send on their own schedule)
        b.socket_send(Expr::local("f1"), "on_leader_elected", vec![Expr::SelfNode]);
        b.socket_send(Expr::local("f2"), "on_leader_elected", vec![Expr::SelfNode]);
        // record the accepted epoch (the racing write); normally done
        // before any follower ack arrives
        b.write("accepted_epoch", Expr::val(1));
        // waitForEpoch: spin until a quorum (2) of acks
        b.assign("ok", Expr::val(false));
        b.retry_while(Expr::local("ok").not(), |b| {
            b.read("c", "epoch_ack_count");
            b.if_else(
                Expr::local("c").eq(Expr::null()),
                |b| {
                    b.assign("ok", Expr::val(false));
                },
                |b| {
                    b.assign(
                        "ok",
                        Expr::Binary(
                            BinOp::Ge,
                            Box::new(Expr::local("c")),
                            Box::new(Expr::val(2)),
                        ),
                    );
                },
            );
            b.sleep(Expr::val(2));
        });
        // post-barrier bookkeeping (the serial-report read)
        b.read("final", "epoch_ack_count");
        b.if_(Expr::local("final").lt(Expr::val(2)), |b| {
            b.abort("quorum evaporated after waitForEpoch");
        });
        b.write("current_epoch", Expr::val(1));
    });
    pb.func("on_epoch_ack", &["from"], FuncKind::SocketHandler, |b| {
        // the racing read: an ack arriving before the epoch is recorded
        // is dropped (the real bug re-sent a NEWLEADER proposal too early)
        b.read("ae", "accepted_epoch");
        b.if_else(
            Expr::local("ae").eq(Expr::null()),
            |b| {
                b.log_warn("epoch ack before accepted-epoch record; dropped");
            },
            |b| {
                // synchronized counter update (mutual exclusion, no order:
                // the write/write pair is still an HB race)
                b.lock("epoch_mutex");
                b.read("c", "epoch_ack_count");
                b.if_else(
                    Expr::local("c").eq(Expr::null()),
                    |b| {
                        b.write("epoch_ack_count", Expr::val(1));
                    },
                    |b| {
                        b.write("epoch_ack_count", Expr::local("c").add(Expr::val(1)));
                    },
                );
                b.unlock("epoch_mutex");
                b.enqueue("proposal_queue", "log_proposal", vec![Expr::local("from")]);
            },
        );
    });
    pb.func("log_proposal", &["from"], FuncKind::EventHandler, |b| {
        b.map_put("proposal_log", Expr::local("from"), Expr::val("ACKEPOCH"));
    });

    // ---- followers -----------------------------------------------------------
    pb.func(
        "on_leader_elected",
        &["leader"],
        FuncKind::SocketHandler,
        |b| {
            b.write("known_leader", Expr::local("leader"));
        },
    );
    pb.func(
        "follower2_main",
        &["leader", "delay"],
        FuncKind::Regular,
        |b| {
            b.sleep(Expr::local("delay"));
            b.socket_send(Expr::local("leader"), "on_epoch_ack", vec![Expr::SelfNode]);
        },
    );

    noise::stats_noise(&mut pb, "zk2", FuncKind::SocketHandler, "proposal_queue");
    pb.func("follower_heartbeats", &["leader"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(14));
        b.socket_send(Expr::local("leader"), "zk2_stat_update", vec![Expr::val(1)]);
    });

    noise::local_churn(&mut pb, "snapshot_serialize2", 60 * i64::from(scale));
    noise::local_churn(&mut pb, "txnlog_sync2", 50 * i64::from(scale));

    let program = pb.build().expect("ZK-1270 program must build");

    let mut topology = Topology::new();
    let leader = {
        let mut nb = topology.node("leader");
        nb.queue("proposal_queue", 1);
        nb.entry("zk2_stat_kicker", vec![]);
        nb.id()
    };
    let f1 = {
        let mut nb = topology.node("f1");
        nb.entry("follower2_main", vec![Value::Node(leader), Value::Int(50)]);
        nb.entry("follower_heartbeats", vec![Value::Node(leader)]);
        nb.id()
    };
    let f2 = {
        let mut nb = topology.node("f2");
        nb.entry("follower2_main", vec![Value::Node(leader), Value::Int(75)]);
        nb.id()
    };
    topology.nodes[leader.index()].entries.push((
        "zk2_leader_main".to_owned(),
        vec![Value::Node(f1), Value::Node(f2)],
    ));

    topology.nodes[0]
        .entries
        .push(("snapshot_serialize2".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("txnlog_sync2".to_owned(), vec![]));

    Benchmark {
        id: "ZK-1270",
        system: System::ZooKeeper,
        workload: "startup",
        symptom: "Service unavailable",
        error: ErrorPattern::LocalHang,
        root: RootCause::OrderViolation,
        program,
        topology,
        seed: 1_270,
        bug_objects: vec!["accepted_epoch"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_reaches_broadcast_phase() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        assert!(run.completed);
    }
}
