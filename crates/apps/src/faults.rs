//! Canned fault matrices for the benchmark suite.
//!
//! Each benchmark family gets a small set of named [`FaultPlan`]s that
//! exercise the fault classes its real-world counterpart is known to see
//! (socket reordering in Cassandra's gossip, region-server crashes in
//! HBase, RPC timeouts in MapReduce, leader crashes in ZooKeeper). They
//! drive the `dcatch faults` sub-command and the seeded soak test: the
//! point is not to reproduce a specific outage but to check that the
//! pipeline *degrades cleanly* — every run either completes or reports a
//! classified failure, and nothing panics.

use dcatch_model::NodeId;
use dcatch_sim::{ChannelKind, FaultPlan, MessageAction, MessageFault};

use crate::{Benchmark, System};

/// A named fault plan from the per-family matrix.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Short scenario name (`"socket-delay"`, `"crash-restart"`, …).
    pub name: &'static str,
    /// The plan to run the benchmark under.
    pub plan: FaultPlan,
}

/// The fault matrix for one benchmark, derived from its system family.
///
/// Crash scenarios target the highest-numbered node: node 0 hosts the
/// coordinating side (client / master / leader) in every miniature, so
/// crashing the last node exercises worker/follower loss without making
/// the whole run degenerate.
pub fn fault_scenarios(bench: &Benchmark) -> Vec<FaultScenario> {
    let last = NodeId(bench.topology.nodes.len().saturating_sub(1) as u32);
    match bench.system {
        System::Cassandra => vec![
            FaultScenario {
                name: "socket-delay",
                plan: FaultPlan::default().with_message(MessageFault::new(
                    ChannelKind::Socket,
                    MessageAction::Delay(3),
                )),
            },
            FaultScenario {
                name: "socket-drop-first",
                plan: FaultPlan::default().with_message(
                    MessageFault::new(ChannelKind::Socket, MessageAction::Drop).nth(1),
                ),
            },
        ],
        System::HBase => vec![
            FaultScenario {
                name: "crash-restart",
                plan: FaultPlan::default().with_crash(last, 8, Some(6)),
            },
            FaultScenario {
                name: "zk-notify-dup",
                plan: FaultPlan::default().with_message(MessageFault::new(
                    ChannelKind::ZkNotify,
                    MessageAction::Duplicate,
                )),
            },
        ],
        System::MapReduce => vec![
            FaultScenario {
                name: "rpc-timeout",
                plan: FaultPlan::default().with_rpc_timeout(None, 4),
            },
            FaultScenario {
                name: "rpc-drop-second",
                plan: FaultPlan::default().with_message(
                    MessageFault::new(ChannelKind::RpcRequest, MessageAction::Drop).nth(2),
                ),
            },
        ],
        System::ZooKeeper => vec![
            FaultScenario {
                name: "socket-dup",
                plan: FaultPlan::default().with_message(MessageFault::new(
                    ChannelKind::Socket,
                    MessageAction::Duplicate,
                )),
            },
            FaultScenario {
                name: "crash-no-restart",
                plan: FaultPlan::default().with_crash(last, 10, None),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_nonempty_matrix() {
        for bench in crate::all_benchmarks() {
            let scenarios = fault_scenarios(&bench);
            assert!(!scenarios.is_empty(), "{} has no scenarios", bench.id);
            for s in &scenarios {
                assert!(!s.plan.is_empty(), "{}:{} plan is empty", bench.id, s.name);
                // plans survive the text round-trip used by --fault-plan
                let parsed = FaultPlan::parse(&s.plan.to_text()).expect("round-trip");
                assert_eq!(parsed, s.plan, "{}:{}", bench.id, s.name);
            }
        }
    }
}
