//! Shared building blocks for the benchmark miniatures: fault-tolerance
//! noise that static pruning must remove, benign-but-unprunable guards,
//! and the quorum-barrier custom synchronization that generates the
//! paper's *serial* reports.
//!
//! Monitors and checks run inside *event handlers* (kicked off by a small
//! timer thread), the way real cloud systems run periodic work — which
//! also places them inside DCatch's selective-tracing scope (§3.1.1).

use dcatch_model::FuncKind;
use dcatch_model::{Expr, ProgramBuilder};

/// Registers a stats-counter pattern: a handler updating a stats map plus
/// a periodic check event reading it, with only `Log.warn` downstream.
/// Produces TA candidates that static pruning removes (the bulk of the
/// paper's Table 5 reduction).
///
/// The caller must deliver `"{prefix}_stat_update"` messages (socket or
/// RPC, per `via`) and start `"{prefix}_stat_kicker"` on the node owning
/// `queue`.
pub fn stats_noise(pb: &mut ProgramBuilder, prefix: &str, via: FuncKind, queue: &str) {
    assert!(
        matches!(via, FuncKind::SocketHandler | FuncKind::RpcHandler),
        "stats updates arrive via sockets or RPCs"
    );
    let stats = format!("{prefix}_stats");
    let seen = format!("{prefix}_seen");
    pb.func(format!("{prefix}_stat_update"), &["v"], via, |b| {
        b.map_put(&stats, Expr::val("latest"), Expr::local("v"));
        b.read("s", &seen);
        b.write(&seen, Expr::val(true));
    });
    pb.func(
        format!("{prefix}_stat_check"),
        &[],
        FuncKind::EventHandler,
        |b| {
            b.map_get("v", &stats, Expr::val("latest"));
            b.if_(Expr::local("v").eq(Expr::null()), |b| {
                b.log_warn("stats not yet reported; retrying later");
            });
            b.read("s", &seen);
        },
    );
    let check = format!("{prefix}_stat_check");
    let queue = queue.to_owned();
    pb.func(
        format!("{prefix}_stat_kicker"),
        &[],
        FuncKind::Regular,
        move |b| {
            b.sleep(Expr::val(25));
            b.enqueue(&queue, &check, vec![]);
        },
    );
}

/// Registers a benign-guard pattern: a periodic check event reads a phase
/// cell and *would* crash on a value no writer ever produces. The
/// dependence on a failure instruction makes static pruning keep the
/// candidate, but triggering finds both orders harmless — a **benign**
/// report (Table 4).
///
/// The caller must write `"{prefix}_phase"` from traced concurrent
/// contexts and start `"{prefix}_phase_kicker"` on the node owning
/// `queue`.
pub fn benign_guard(pb: &mut ProgramBuilder, prefix: &str, queue: &str) {
    let phase = format!("{prefix}_phase");
    pb.func(
        format!("{prefix}_phase_check"),
        &[],
        FuncKind::EventHandler,
        |b| {
            b.read("p", &phase);
            b.if_(Expr::local("p").eq(Expr::val("CORRUPT")), |b| {
                b.throw("IllegalStateException");
            });
        },
    );
    let check = format!("{prefix}_phase_check");
    let queue = queue.to_owned();
    pb.func(
        format!("{prefix}_phase_kicker"),
        &[],
        FuncKind::Regular,
        move |b| {
            b.sleep(Expr::val(35));
            b.enqueue(&queue, &check, vec![]);
        },
    );
}

/// Registers a quorum barrier à la ZooKeeper's `waitForEpoch`: handlers
/// increment an acknowledgement counter; a waiter spins until the count
/// reaches 2 and then validates it. The increment is a non-atomic
/// read-modify-write.
///
/// What the pipeline sees, mirroring §7.2's "serial bug reports":
///
/// * the loop-sync analysis only orders the *last* increment before the
///   loop exit, so the pair (first increment, post-loop counter read)
///   stays reported although it is actually ordered — triggering then
///   classifies it **serial** (holding the increment starves the loop);
/// * the lock-guarded increments still race by HB standards (locks give
///   mutual exclusion, not order), exercising the lock-aware placement
///   rule of §5.2 during triggering.
///
/// The caller must deliver two `"{prefix}_ack"` messages (socket or RPC,
/// per `via`) from distinct contexts and start `"{prefix}_wait"`. The
/// waiter performs its own result RPC/socket so its post-loop read is
/// traced; `report_to_self` keeps it communication-free when undesired.
pub fn quorum_barrier(pb: &mut ProgramBuilder, prefix: &str, via: FuncKind) {
    assert!(
        matches!(via, FuncKind::SocketHandler | FuncKind::RpcHandler),
        "acks arrive via sockets or RPCs"
    );
    let count = format!("{prefix}_count");
    let mutex = format!("{prefix}_mutex");
    pb.func(format!("{prefix}_ack"), &["from"], via, |b| {
        // like the real waitForEpoch, the counter update is synchronized —
        // mutual exclusion, but *no ordering*, so the write/write pair is
        // still reported as a race candidate (locks are deliberately not
        // part of the HB model, paper §2.3)
        b.lock(&mutex);
        b.read("c", &count);
        b.if_else(
            Expr::local("c").eq(Expr::null()),
            |b| {
                b.write(&count, Expr::val(1));
            },
            |b| {
                b.write(&count, Expr::local("c").add(Expr::val(1)));
            },
        );
        b.unlock(&mutex);
    });
    let done_handler = format!("{prefix}_done");
    pb.func(&done_handler, &["n"], via, |b| {
        b.map_put(
            &format!("{prefix}_done_log"),
            Expr::local("n"),
            Expr::val(true),
        );
        if matches!(via, FuncKind::RpcHandler) {
            b.ret(Expr::val(true));
        }
    });
    pb.func(
        format!("{prefix}_wait"),
        &["peer"],
        FuncKind::Regular,
        move |b| {
            b.assign("ok", Expr::val(false));
            b.retry_while(Expr::local("ok").not(), |b| {
                b.read("c", &count);
                b.if_else(
                    Expr::local("c").eq(Expr::null()),
                    |b| {
                        b.assign("ok", Expr::val(false));
                    },
                    |b| {
                        b.assign(
                            "ok",
                            Expr::Binary(
                                dcatch_model::BinOp::Ge,
                                Box::new(Expr::local("c")),
                                Box::new(Expr::val(2)),
                            ),
                        );
                    },
                );
                b.sleep(Expr::val(2));
            });
            b.read("c2", &count);
            b.if_(Expr::local("c2").eq(Expr::null()), |b| {
                b.abort("quorum barrier lost its count");
            });
            b.if_(Expr::local("c2").lt(Expr::val(2)), |b| {
                b.abort("quorum barrier released early");
            });
            // announce completion (also puts this function in tracing scope)
            if matches!(via, FuncKind::RpcHandler) {
                b.rpc_void(Expr::local("peer"), &done_handler, vec![Expr::SelfNode]);
            } else {
                b.socket_send(Expr::local("peer"), &done_handler, vec![Expr::SelfNode]);
            }
        },
    );
}

/// Registers a pure-computation churn thread `name`: `iters` rounds of
/// local memory activity (compaction, spill sort, log sync…). Selective
/// tracing skips it entirely — it touches no communication — while
/// unselective tracing records every access. This is what makes the
/// paper's Table 8 comparison reproducible: real cloud systems spend most
/// of their memory accesses far from the communication paths, and full
/// tracing "will increase the trace size by up to 40 times" and blow the
/// trace analysis out of memory.
pub fn local_churn(pb: &mut ProgramBuilder, name: &str, iters: i64) {
    let scratch = format!("{name}_scratch");
    let table = format!("{name}_table");
    pb.func(name, &[], FuncKind::Regular, move |b| {
        // background maintenance starts after the protocol traffic settles
        // (compaction and friends are idle-time work); this keeps the
        // natural-run timing of the protocol independent of the churn size
        b.sleep(Expr::val(5_000));
        b.assign("i", Expr::val(0));
        b.while_(Expr::local("i").lt(Expr::val(iters)), |b| {
            b.write(&scratch, Expr::local("i"));
            b.map_put(&table, Expr::local("i"), Expr::local("i"));
            b.read("v", &scratch);
            b.assign("i", Expr::local("v").add(Expr::val(1)));
        });
    });
}
