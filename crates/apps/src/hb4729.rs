//! HB-4729 — HBase: system-master crash from a clash between region
//! unassignment and server expiry.
//!
//! Workload (Table 3): enable a table while a region server expires. The
//! paper's §7.2 describes the detected races exactly: "one thread t1 could
//! delete a zknode concurrently with another thread t2 reads this zknode
//! and deletes this zknode. Consequently, multiple DCbugs are reported
//! here between delete and reads, and between delete and delete. They are
//! all truly harmful: any one of these zknode operations in t2 would fail
//! and cause HMaster to crash, if the delete from t1 executes right before
//! it."
//!
//! An atomicity violation (AV): both paths individually guard their
//! delete (`exists`/`getData` first), but the check/act sequence is not
//! atomic. Distributed explicit error (DE): the expiry originates on the
//! HRS, the crash hits the HMaster.

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the HB-4729 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- HMaster boot: the unassigned znode exists at startup ---------------
    pb.func("master_boot", &[], FuncKind::Regular, |b| {
        b.zk_create(Expr::val("/unassigned/r2"), Expr::val("OFFLINE"));
        b.write("master_ready", Expr::val(true));
    });

    // ---- t2: enable-table path (getData … delete, non-atomic) ---------------
    // invoked by the admin client as an RPC (which also places it inside
    // the selective-tracing scope, like the real EnableTableHandler)
    pb.func("enable_table", &[], FuncKind::RpcHandler, |b| {
        // t2 reads the znode…
        b.zk_get_data("state", Expr::val("/unassigned/r2"));
        b.if_(Expr::local("state").eq(Expr::val("OFFLINE")), |b| {
            // …prepares the assignment…
            b.map_put("assignments", Expr::val("r2"), Expr::val("hrs1"));
            // …and deletes it (throws NoNode if t1 won the race)
            b.zk_delete(Expr::val("/unassigned/r2"));
            b.write("table_enabled", Expr::val(true));
        });
        b.ret(Expr::val(true));
    });
    pb.func("admin_client", &["master"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(40));
        b.rpc_void(Expr::local("master"), "enable_table", vec![]);
    });

    // ---- t1: server-expiry path (exists … delete, non-atomic) ---------------
    pb.func("report_expire", &["server"], FuncKind::RpcHandler, |b| {
        b.enqueue(
            "master_events",
            "expire_handler",
            vec![Expr::local("server")],
        );
        b.ret(Expr::val(true));
    });
    pb.func("expire_handler", &["server"], FuncKind::EventHandler, |b| {
        b.map_remove("assignments", Expr::val("r2"));
        b.zk_exists("present", Expr::val("/unassigned/r2"));
        b.if_(Expr::local("present"), |b| {
            // throws NoNode if t2's delete lands in the check/act window
            b.zk_delete(Expr::val("/unassigned/r2"));
            b.write("expiry_cleaned", Expr::val(true));
        });
    });

    // ---- HRS: reports its own expiry (session timeout) ----------------------
    pb.func("hrs_expiry_reporter", &["master"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(150));
        b.rpc_void(Expr::local("master"), "report_expire", vec![Expr::SelfNode]);
    });

    // watcher cache noise: every /unassigned change refreshes a cache read
    // by a monitor with warn-only impact (pruned by SP)
    pb.func(
        "on_unassigned_change",
        &["path", "data"],
        FuncKind::ZkWatcher,
        |b| {
            b.map_put("region_cache", Expr::local("path"), Expr::local("data"));
        },
    );
    pb.func("cache_check", &[], FuncKind::EventHandler, |b| {
        b.map_get("c", "region_cache", Expr::val("/unassigned/r2"));
        b.if_(Expr::local("c").eq(Expr::null()), |b| {
            b.log_warn("region cache cold");
        });
    });
    pb.func("cache_monitor", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(60));
        b.enqueue("master_events", "cache_check", vec![]);
    });
    noise::stats_noise(&mut pb, "hb2", FuncKind::RpcHandler, "master_events");
    pb.func("hrs_heartbeats", &["master"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(10));
        b.rpc_void(Expr::local("master"), "hb2_stat_update", vec![Expr::val(1)]);
        b.sleep(Expr::val(18));
        b.rpc_void(Expr::local("master"), "hb2_stat_update", vec![Expr::val(2)]);
    });
    noise::benign_guard(&mut pb, "hb2table", "master_events");
    pb.func("hb2_phase_writer", &[], FuncKind::EventHandler, |b| {
        b.write("hb2table_phase", Expr::val("ENABLING"));
    });
    pb.func("hb2_phase_write_kicker", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(9));
        b.enqueue("master_events", "hb2_phase_writer", vec![]);
    });

    noise::local_churn(&mut pb, "region_compaction2", 100 * i64::from(scale));
    noise::local_churn(&mut pb, "wal_sync", 80 * i64::from(scale));

    let program = pb.build().expect("HB-4729 program must build");

    let mut topology = Topology::new();
    let master = {
        let mut nb = topology.node("HMaster");
        nb.queue("master_events", 1).rpc_workers(2);
        nb.entry("master_boot", vec![]);
        nb.entry("cache_monitor", vec![]);
        nb.entry("hb2_stat_kicker", vec![]);
        nb.entry("hb2table_phase_kicker", vec![]);
        nb.entry("hb2_phase_write_kicker", vec![]);
        nb.id()
    };
    {
        let mut nb = topology.node("HRS");
        nb.rpc_workers(2);
        nb.entry("hrs_expiry_reporter", vec![Value::Node(master)]);
        nb.entry("hrs_heartbeats", vec![Value::Node(master)]);
        nb.entry("admin_client", vec![Value::Node(master)]);
    }
    topology.watch(master, "/unassigned/", "on_unassigned_change");

    topology.nodes[0]
        .entries
        .push(("region_compaction2".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("wal_sync".to_owned(), vec![]));

    Benchmark {
        id: "HB-4729",
        system: System::HBase,
        workload: "enable table & expire server",
        symptom: "System Master Crash",
        error: ErrorPattern::DistributedExplicit,
        root: RootCause::AtomicityViolation,
        program,
        topology,
        // 4728, not the bug number: under the SplitMix64 scheduler the
        // 4729 schedule happens to mask the region-assignment failure
        // during triggering (verdict flips to benign).
        seed: 4_728,
        bug_objects: vec!["/unassigned/r2"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_enables_table_then_cleans_expiry() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        // the znode was created and deleted exactly once each
        assert!(run.trace.count_tag("zu") >= 2);
    }
}
