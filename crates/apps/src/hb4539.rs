//! HB-4539 — HBase: system-master crash when an `alter table` collides
//! with a table split.
//!
//! Workload (Table 3): split a table, then alter it. Topology: HMaster and
//! one HRegionServer (the paper runs this benchmark on two physical
//! machines), plus the built-in ZooKeeper coordination service.
//!
//! This benchmark contains the paper's **Figure 3 causality chain**
//! verbatim: HMaster adds a region to `regionsToOpen` (W), a worker thread
//! issues the `OpenRegion` RPC, the HRS handler enqueues a region-open
//! event, the event handler updates the region's zknode to
//! `RS_ZK_REGION_OPENED`, ZooKeeper pushes the change to the HMaster's
//! watcher, and the watcher finally reads `regionsToOpen` (R). W ⇒ R holds
//! only through thread + RPC + event + push rules together — drop any one
//! (Table 9 ablations) and the pair becomes a false positive.
//!
//! The **bug** is the third party: the alter-table path removes the region
//! from `regionsToOpen` concurrently with the watcher's check. If the
//! removal lands first, the watcher finds the list empty and the master
//! dies — a distributed explicit error (DE) from an order violation (OV).

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the HB-4539 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- HMaster: split path (Figure 3 steps 1–3) --------------------------
    pb.func("master_split", &["hrs"], FuncKind::Regular, |b| {
        b.enqueue("master_events", "split_handler", vec![Expr::local("hrs")]);
    });
    pb.func("split_handler", &["hrs"], FuncKind::EventHandler, |b| {
        // (1) W: regionsToOpen.add(region)
        b.list_add("regionsToOpen", Expr::val("r1"));
        // (2) a thread t is created to open the region
        b.spawn_detached("open_region_worker", vec![Expr::local("hrs")]);
    });
    pb.func("open_region_worker", &["hrs"], FuncKind::Regular, |b| {
        // (3) t invokes the OpenRegion RPC
        b.rpc_void(Expr::local("hrs"), "open_region", vec![Expr::val("r1")]);
    });

    // ---- HRS: open path (Figure 3 steps 4–6) -------------------------------
    pb.func("open_region", &["region"], FuncKind::RpcHandler, |b| {
        // (4) the RPC implementation puts a region-open event into a queue
        b.enqueue(
            "hrs_events",
            "region_open_handler",
            vec![Expr::local("region")],
        );
        b.ret(Expr::val(true));
    });
    pb.func(
        "region_open_handler",
        &["region"],
        FuncKind::EventHandler,
        |b| {
            // (5) the event is handled…
            b.map_put("online_regions", Expr::local("region"), Expr::val(true));
            // (6) …and the region's zknode status becomes RS_ZK_REGION_OPENED
            b.zk_create(
                Expr::val("/region/").concat(Expr::local("region")),
                Expr::val("RS_ZK_REGION_OPENED"),
            );
        },
    );

    // ---- HMaster: watcher (Figure 3 steps 7–8) ------------------------------
    pb.func(
        "on_region_state",
        &["path", "data"],
        FuncKind::ZkWatcher,
        |b| {
            b.if_(
                Expr::local("data").eq(Expr::val("RS_ZK_REGION_OPENED")),
                |b| {
                    // (8) R: if (regionsToOpen.isEmpty()) → master crash
                    b.list_is_empty("empty", "regionsToOpen");
                    b.if_else(
                        Expr::local("empty"),
                        |b| {
                            b.throw("IllegalStateException: opened region was not pending");
                        },
                        |b| {
                            b.list_remove("regionsToOpen", Expr::val("r1"));
                            b.write("assignment_done", Expr::val(true));
                        },
                    );
                },
            );
        },
    );

    // ---- HMaster: alter-table path (the racing third party) ----------------
    pb.func("alter_table", &[], FuncKind::Regular, |b| {
        // correct run: the watcher has already consumed the pending region
        b.sleep(Expr::val(160));
        b.enqueue("master_events", "alter_handler", vec![]);
    });
    pb.func("alter_handler", &[], FuncKind::EventHandler, |b| {
        b.write("table_schema", Expr::val("v2"));
        // unassign pending regions so they reopen with the new schema
        b.list_remove("regionsToOpen", Expr::val("r1"));
        b.enqueue("master_events", "reopen_regions", vec![]);
    });
    pb.func("reopen_regions", &[], FuncKind::EventHandler, |b| {
        b.read("s", "table_schema");
        b.map_put("reopen_plan", Expr::val("r1"), Expr::local("s"));
    });

    // master-side bookkeeping noise (pruned by SP) and a benign guard
    noise::stats_noise(&mut pb, "hbase", FuncKind::RpcHandler, "master_events");
    pb.func("hrs_load_reporter", &["master"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(20));
        b.rpc_void(
            Expr::local("master"),
            "hbase_stat_update",
            vec![Expr::val(7)],
        );
        b.sleep(Expr::val(25));
        b.rpc_void(
            Expr::local("master"),
            "hbase_stat_update",
            vec![Expr::val(9)],
        );
    });

    noise::local_churn(&mut pb, "region_compaction", 45 * i64::from(scale));
    noise::local_churn(&mut pb, "memstore_flush", 35 * i64::from(scale));

    let program = pb.build().expect("HB-4539 program must build");

    let mut topology = Topology::new();
    let master = {
        let mut nb = topology.node("HMaster");
        nb.queue("master_events", 1).rpc_workers(2);
        nb.entry("alter_table", vec![]);
        nb.entry("hbase_stat_kicker", vec![]);
        nb.id()
    };
    let hrs = {
        let mut nb = topology.node("HRS");
        nb.queue("hrs_events", 1).rpc_workers(2);
        nb.entry("hrs_load_reporter", vec![Value::Node(master)]);
        nb.id()
    };
    topology.nodes[master.index()]
        .entries
        .push(("master_split".to_owned(), vec![Value::Node(hrs)]));
    topology.watch(master, "/region/", "on_region_state");

    topology.nodes[0]
        .entries
        .push(("region_compaction".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("memstore_flush".to_owned(), vec![]));

    Benchmark {
        id: "HB-4539",
        system: System::HBase,
        workload: "split table & alter table",
        symptom: "System Master Crash",
        error: ErrorPattern::DistributedExplicit,
        root: RootCause::OrderViolation,
        program,
        topology,
        seed: 4_539,
        bug_objects: vec!["regionsToOpen"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_opens_region_then_alters() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        // the figure-3 chain executed: rpc, event, zk update, zk push
        for tag in ["rc", "eb", "zu", "zp"] {
            assert!(run.trace.count_tag(tag) >= 1, "missing {tag}");
        }
    }
}
