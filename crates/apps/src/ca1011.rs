//! CA-1011 — Cassandra: data backup (hinted-handoff) failure during
//! bootstrap.
//!
//! Workload (Table 3): cluster startup. Topology: a seed node, a
//! bootstrapping node, and a peer replica. Cassandra communicates through
//! asynchronous sockets (`IVerbHandler`) and stages work on event queues
//! (Table 1: sockets + threads + events, no RPC).
//!
//! The bootstrapping node announces its token through gossip; the seed's
//! gossip stage applies it to `token_map`. A later gossip round *replaces*
//! the token — a non-atomic remove-then-put. The hint-delivery thread
//! reads `token_map` concurrently: if its read lands inside the
//! replacement window (an atomicity violation, AV), the seed believes the
//! bootstrapping node has no token and tells it the backup failed — the
//! error surfaces on a *different* node than the racing accesses (DE).

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the CA-1011 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- seed: gossip stage ---------------------------------------------
    pb.func(
        "on_announce",
        &["from", "token"],
        FuncKind::SocketHandler,
        |b| {
            // record the pending digest, then defer its processing to a
            // self-addressed message (Cassandra's stage hand-off) — the
            // `Msoc` rule is what orders this write before `on_digest`'s read
            b.write("pending_digest", Expr::local("token"));
            b.socket_send(Expr::SelfNode, "on_digest", vec![]);
            b.enqueue(
                "gossip_stage",
                "apply_gossip",
                vec![Expr::local("from"), Expr::local("token")],
            );
        },
    );
    pb.func("on_digest", &[], FuncKind::SocketHandler, |b| {
        b.read("d", "pending_digest");
        b.if_(Expr::local("d").eq(Expr::null()), |b| {
            b.log_warn("digest vanished before processing");
        });
        b.map_put("digest_log", Expr::val("last"), Expr::local("d"));
    });
    pb.func(
        "apply_gossip",
        &["from", "token"],
        FuncKind::EventHandler,
        |b| {
            b.map_put("token_map", Expr::local("from"), Expr::local("token"));
            b.write("ca_phase", Expr::val("LIVE"));
        },
    );
    pb.func(
        "on_update",
        &["from", "token"],
        FuncKind::SocketHandler,
        |b| {
            b.enqueue(
                "gossip_stage",
                "apply_update",
                vec![Expr::local("from"), Expr::local("token")],
            );
        },
    );
    pb.func(
        "apply_update",
        &["from", "token"],
        FuncKind::EventHandler,
        |b| {
            // the AV window: remove … (gossip-state recomputation) … put
            b.map_remove("token_map", Expr::local("from"));
            b.sleep(Expr::val(15));
            b.map_put("token_map", Expr::local("from"), Expr::local("token"));
        },
    );

    // ---- seed: hint delivery ----------------------------------------------
    pb.func("hint_delivery", &["boot"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(220));
        b.map_get("t", "token_map", Expr::val("boot"));
        b.if_else(
            Expr::local("t").eq(Expr::null()),
            |b| {
                // no token for the bootstrapping node → hints undeliverable
                b.log_fatal("cannot deliver hints: no token for bootstrapping node");
                b.socket_send(Expr::local("boot"), "on_backup_failed", vec![]);
            },
            |b| {
                b.map_put("delivered_hints", Expr::val("boot"), Expr::local("t"));
            },
        );
    });

    // ---- bootstrapping node -------------------------------------------------
    pb.func("on_backup_failed", &[], FuncKind::SocketHandler, |b| {
        b.log_fatal("bootstrap data backup failed: hints undeliverable");
    });
    pb.func("boot_main", &["seed", "peer"], FuncKind::Regular, |b| {
        b.socket_send(
            Expr::local("seed"),
            "on_announce",
            vec![Expr::val("boot"), Expr::val("tok_1")],
        );
        b.socket_send(
            Expr::local("peer"),
            "on_announce",
            vec![Expr::val("boot"), Expr::val("tok_1")],
        );
        // a later gossip round refreshes the token
        b.sleep(Expr::val(90));
        b.socket_send(
            Expr::local("seed"),
            "on_update",
            vec![Expr::val("boot"), Expr::val("tok_2")],
        );
    });

    // ---- peer: replica bookkeeping (noise pruned by SP) ---------------------
    pb.func("peer_check", &[], FuncKind::EventHandler, |b| {
        b.map_get("t", "token_map", Expr::val("boot"));
        b.if_(Expr::local("t").eq(Expr::null()), |b| {
            b.log_warn("peer has not seen the bootstrap token yet");
        });
    });
    pb.func("peer_monitor", &[], FuncKind::Regular, |b| {
        b.sleep(Expr::val(50));
        b.enqueue("gossip_stage", "peer_check", vec![]);
    });
    noise::stats_noise(&mut pb, "gossip", FuncKind::SocketHandler, "gossip_stage");
    pb.func("gossip_heartbeats", &["seed"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(12));
        b.socket_send(
            Expr::local("seed"),
            "gossip_stat_update",
            vec![Expr::val(1)],
        );
        b.sleep(Expr::val(14));
        b.socket_send(
            Expr::local("seed"),
            "gossip_stat_update",
            vec![Expr::val(2)],
        );
    });
    noise::benign_guard(&mut pb, "ca", "gossip_stage");

    noise::local_churn(&mut pb, "gossip_compaction", 90 * i64::from(scale));
    noise::local_churn(&mut pb, "hint_flush", 60 * i64::from(scale));

    let program = pb.build().expect("CA-1011 program must build");

    let mut topology = Topology::new();
    let seed = {
        let mut nb = topology.node("seed");
        nb.queue("gossip_stage", 1);
        nb.entry("ca_phase_kicker", vec![]);
        nb.entry("gossip_stat_kicker", vec![]);
        nb.id()
    };
    let peer = {
        let mut nb = topology.node("peer");
        nb.queue("gossip_stage", 1);
        nb.entry("peer_monitor", vec![]);
        nb.id()
    };
    let boot = {
        let mut nb = topology.node("boot");
        nb.entry("boot_main", vec![Value::Node(seed), Value::Node(peer)]);
        nb.entry("gossip_heartbeats", vec![Value::Node(seed)]);
        nb.id()
    };
    topology.nodes[seed.index()]
        .entries
        .push(("hint_delivery".to_owned(), vec![Value::Node(boot)]));

    topology.nodes[0]
        .entries
        .push(("gossip_compaction".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("hint_flush".to_owned(), vec![]));

    Benchmark {
        id: "CA-1011",
        system: System::Cassandra,
        workload: "startup",
        symptom: "Data backup failure",
        error: ErrorPattern::DistributedExplicit,
        root: RootCause::AtomicityViolation,
        program,
        topology,
        seed: 1_011,
        bug_objects: vec!["token_map"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_delivers_hints() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        assert!(run.trace.count_tag("ss") >= 4, "gossip traffic expected");
    }
}
