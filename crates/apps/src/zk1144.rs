//! ZK-1144 — ZooKeeper: service unavailable when a follower receives a
//! sync packet before its request processor is initialized.
//!
//! Workload (Table 3): startup (leader election just finished). Topology:
//! leader and follower, communicating over sockets (Table 1: ZooKeeper
//! uses sockets + threads + events, no RPC).
//!
//! After the election the leader sends the follower a sync packet. The
//! follower's packet handler needs the node's `request_processor`, which
//! the startup thread initializes concurrently — an order violation (OV).
//! If the packet wins the race, it is dropped; the session-establishment
//! flag is never set and the local session waiter spins forever: the
//! service is unavailable — a local hang (LH).

use dcatch_model::{Expr, FuncKind, ProgramBuilder, Value};
use dcatch_sim::Topology;

use crate::noise;
use crate::{Benchmark, ErrorPattern, RootCause, System};

/// Builds the ZK-1144 benchmark.
pub fn benchmark_scaled(scale: u32) -> Benchmark {
    let mut pb = ProgramBuilder::new();

    // ---- follower ----------------------------------------------------------
    pb.func("follower_main", &["leader"], FuncKind::Regular, |b| {
        b.spawn_detached("session_waiter", vec![]);
        // initialize the request-processing pipeline (the racing write)
        b.write("request_processor", Expr::val("FinalRequestProcessor"));
        // announce readiness to the leader (the connection thread talks)
        b.socket_send(
            Expr::local("leader"),
            "on_follower_ready",
            vec![Expr::SelfNode],
        );
    });
    pb.func("on_follower_ready", &["f"], FuncKind::SocketHandler, |b| {
        b.map_put("ready_followers", Expr::local("f"), Expr::val(true));
    });
    pb.func("on_sync_packet", &["pkt"], FuncKind::SocketHandler, |b| {
        // the racing read: the processor may not exist yet
        b.read("rp", "request_processor");
        b.if_else(
            Expr::local("rp").eq(Expr::null()),
            |b| {
                b.log_warn("sync packet arrived before processor setup; dropped");
            },
            |b| {
                b.write("session_established", Expr::val(true));
                b.enqueue("request_queue", "commit_request", vec![Expr::local("pkt")]);
            },
        );
    });
    pb.func("commit_request", &["pkt"], FuncKind::EventHandler, |b| {
        b.map_put("committed", Expr::local("pkt"), Expr::val(true));
    });
    pb.func("session_waiter", &[], FuncKind::Regular, |b| {
        b.assign("ok", Expr::val(false));
        b.retry_while(Expr::local("ok").not(), |b| {
            b.read("s", "session_established");
            b.assign("ok", Expr::local("s"));
            b.sleep(Expr::val(2));
        });
        b.write("serving", Expr::val(true));
    });

    // ---- leader -------------------------------------------------------------
    pb.func("leader_main", &["follower"], FuncKind::Regular, |b| {
        b.write("leader_state", Expr::val("LEADING"));
        // the sync packet normally arrives well after follower startup
        b.sleep(Expr::val(80));
        b.socket_send(
            Expr::local("follower"),
            "on_sync_packet",
            vec![Expr::val("sync_1")],
        );
    });

    // election statistics noise (pruned by SP) and a benign guard
    noise::stats_noise(&mut pb, "zk1", FuncKind::SocketHandler, "request_queue");
    pb.func("leader_heartbeats", &["follower"], FuncKind::Regular, |b| {
        b.sleep(Expr::val(10));
        b.socket_send(
            Expr::local("follower"),
            "zk1_stat_update",
            vec![Expr::val(1)],
        );
        b.sleep(Expr::val(16));
        b.socket_send(
            Expr::local("follower"),
            "zk1_stat_update",
            vec![Expr::val(2)],
        );
    });

    noise::local_churn(&mut pb, "snapshot_serialize", 60 * i64::from(scale));
    noise::local_churn(&mut pb, "txnlog_sync", 50 * i64::from(scale));

    let program = pb.build().expect("ZK-1144 program must build");

    let mut topology = Topology::new();
    let follower = {
        let mut nb = topology.node("follower");
        nb.queue("request_queue", 1);
        nb.entry("zk1_stat_kicker", vec![]);
        nb.id()
    };
    let leader = {
        let mut nb = topology.node("leader");
        nb.entry("leader_main", vec![Value::Node(follower)]);
        nb.entry("leader_heartbeats", vec![Value::Node(follower)]);
        nb.id()
    };
    topology.nodes[follower.index()]
        .entries
        .push(("follower_main".to_owned(), vec![Value::Node(leader)]));

    topology.nodes[0]
        .entries
        .push(("snapshot_serialize".to_owned(), vec![]));
    topology.nodes[0]
        .entries
        .push(("txnlog_sync".to_owned(), vec![]));

    Benchmark {
        id: "ZK-1144",
        system: System::ZooKeeper,
        workload: "startup",
        symptom: "Service unavailable",
        error: ErrorPattern::LocalHang,
        root: RootCause::OrderViolation,
        program,
        topology,
        seed: 1_144,
        bug_objects: vec!["request_processor"],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn natural_run_establishes_the_session() {
        let b = super::benchmark_scaled(1);
        let run = World::run_once(
            &b.program,
            &b.topology,
            SimConfig::default().with_seed(b.seed),
        )
        .unwrap();
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        assert!(run.completed);
    }
}
