//! `streambench` — a synthetic unbounded-trace workload for exercising the
//! streaming detector (`dcatch streambench`, `--streaming` plumbing).
//!
//! Two nodes play socket ping-pong: each round's handler reads and
//! rewrites the node-local `token` and `laps` counters, then volleys back
//! with a decremented counter. Every access in round *k* is
//! happens-before-ordered with every access in round *k + 2* on the same
//! node (through the socket chain), so the online detector provably
//! retires the whole chain as it goes — the resident window stays O(1)
//! while the trace grows linearly with `rounds`.
//!
//! One pair of detached threads racing on `shared_flag` at boot is the
//! single surviving candidate, proving a bounded window does not lose the
//! needle in an arbitrarily long haystack.

use dcatch_model::{Expr, FuncKind, Program, ProgramBuilder, Value};
use dcatch_sim::Topology;

/// Trace records one ping-pong round contributes, asymptotically
/// (measured on the default seed: the socket send/receive pair and the
/// four memory accesses). `dcatch streambench --records N` sizes `rounds`
/// with this so the emitted trace lands near the target.
pub const STREAM_RECORDS_PER_ROUND: u64 = 6;

/// Rounds needed for a trace of roughly `records` records.
pub fn streambench_rounds(records: u64) -> i64 {
    (records / STREAM_RECORDS_PER_ROUND).max(1) as i64
}

/// Builds the streambench program: a `rounds`-long two-node ping-pong
/// chain plus one detached racer pair on `shared_flag`.
pub fn streambench(rounds: i64) -> (Program, Topology) {
    let mut pb = ProgramBuilder::new();
    pb.func("boot", &["peer"], FuncKind::Regular, |b| {
        // the needle: two unordered writers of one flag, at trace start —
        // the window must carry them across the entire chain
        b.spawn_detached("flag_racer", vec![]);
        b.spawn_detached("flag_racer", vec![]);
        b.write("token", Expr::val(0));
        b.write("laps", Expr::val(0));
        b.socket_send(
            Expr::local("peer"),
            "volley",
            vec![Expr::val(rounds), Expr::SelfNode],
        );
    });
    pb.func("flag_racer", &[], FuncKind::Regular, |b| {
        b.write("shared_flag", Expr::val(1));
    });
    pb.func("volley", &["n", "peer"], FuncKind::SocketHandler, |b| {
        // the haystack: node-local state each round reads and rewrites;
        // ordered against rounds two volleys later, hence retirable
        b.read("t", "token");
        b.write("token", Expr::local("n"));
        b.read("l", "laps");
        b.write("laps", Expr::local("n"));
        b.if_(Expr::local("n").gt(Expr::val(0)), |b| {
            b.socket_send(
                Expr::local("peer"),
                "volley",
                vec![Expr::local("n").sub(Expr::val(1)), Expr::SelfNode],
            );
        });
    });
    let program = pb.build().expect("streambench program is well-formed");
    let mut topo = Topology::new();
    let pong = topo.node("pong").id();
    topo.node("ping").entry("boot", vec![Value::Node(pong)]);
    (program, topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcatch_sim::{SimConfig, World};

    #[test]
    fn trace_length_tracks_rounds() {
        let steps = |rounds: i64| {
            let (p, topo) = streambench(rounds);
            let cfg = SimConfig::default().with_seed(7);
            let run = World::run_once(&p, &topo, cfg).unwrap();
            assert!(run.failures.is_empty(), "{:?}", run.failures);
            run.trace.len() as u64
        };
        let (small, large) = (steps(100), steps(200));
        let per_round = (large - small) / 100;
        assert_eq!(
            per_round, STREAM_RECORDS_PER_ROUND,
            "records-per-round constant drifted: measured {per_round}"
        );
    }
}
