#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Fully offline — every dependency is a workspace member.
#
#   scripts/check.sh          # fmt + clippy + build + test
#                             # (DCATCH_SOAK=1 appends the fault soak)
#   scripts/check.sh bench    # fast bench smoke run (1 warm-up + 3 samples
#                             # per entry), refreshing BENCH_pipeline.json,
#                             # BENCH_hbgraph.json, and BENCH_streaming.json
#                             # in the repo root, then
#                             # scripts/bench_compare.sh against the
#                             # committed *_baseline.json files
#   scripts/check.sh soak     # seeded fault soak only: the fault_soak test
#                             # suite plus `dcatch faults all` across a
#                             # fixed seed set — every run must complete or
#                             # degrade to a classified failure
#   scripts/check.sh stream   # streaming-mode smoke: one benchmark run
#                             # offline and with --streaming in separate
#                             # processes must agree byte-for-byte on every
#                             # detection-relevant report section, and the
#                             # streambench subcommand must find its
#                             # planted racer pair in bounded memory
#   scripts/check.sh degrade  # resource-governor smoke: `detect all` under
#                             # a deliberately tiny memory budget must exit
#                             # 0 with a clean schema-v6 report (no errors,
#                             # no OOM, >0 recorded degradation steps), and
#                             # a fresh-journal run must byte-match an
#                             # all-skipped `--resume` of the same journal
#   scripts/check.sh synth    # protocol-fuzzer smoke: a fixed-seed synth
#                             # batch must be byte-deterministic across two
#                             # runs, exit 0, and quarantine nothing; under
#                             # DCATCH_SOAK=1 it additionally runs 50
#                             # scenarios per protocol and fails if planted-
#                             # bug recall drops below SYNTH_BASELINE.json
set -euo pipefail
cd "$(dirname "$0")/.."

soak() {
    echo "== fault soak (fixed seeds) =="
    cargo test --offline -q -p dcatch --test fault_soak
    cargo run --offline -q --bin dcatch -- faults all --seeds 1,7,42,1011
    echo "Fault soak passed."
}

if [[ "${1:-}" == "soak" ]]; then
    soak
    exit 0
fi

synth_smoke() {
    local sy_dir="$1"
    mkdir -p "$sy_dir"
    echo "== synth smoke (fixed seed, byte-deterministic, zero discrepancies) =="
    cargo run --offline --release -q --bin dcatch -- synth --seed 1 --count 3 \
        --quarantine "$sy_dir/q" --json --out "$sy_dir/s1.json"
    cargo run --offline --release -q --bin dcatch -- synth --seed 1 --count 3 \
        --quarantine "$sy_dir/q" --json --out "$sy_dir/s2.json"
    cmp "$sy_dir/s1.json" "$sy_dir/s2.json"
    if [[ -d "$sy_dir/q" ]] && [[ -n "$(ls -A "$sy_dir/q")" ]]; then
        echo "synth smoke quarantined cases:" >&2
        ls "$sy_dir/q" >&2
        exit 1
    fi
    echo "synth smoke ok: byte-deterministic, nothing quarantined"
    if [[ "${DCATCH_SOAK:-0}" == "1" ]]; then
        echo "== synth recall gate (50 scenarios/protocol vs SYNTH_BASELINE.json) =="
        cargo run --offline --release -q --bin dcatch -- synth --seed 1 --count 50 \
            --jobs 4 --quarantine "$sy_dir/soak-q" --json --out "$sy_dir/soak.json"
        python3 - "$sy_dir/soak.json" SYNTH_BASELINE.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
fps = errors = 0
for p in doc["synth"]["protocols"]:
    name, planted, detected = p["protocol"], p["planted"], p["detected"]
    recall = detected / planted if planted else 1.0
    floor = base["recall_floor"][name]
    assert recall >= floor, (
        f"{name}: recall {detected}/{planted} = {recall:.3f} "
        f"dropped below the committed baseline {floor:.3f}")
    fps += p["false_positives"]
    errors += p["errors"]
    print(f"  {name:8} recall {detected}/{planted} (floor {floor:.2f})")
assert fps <= base["max_false_positives"], f"{fps} false positives"
assert errors <= base["max_errors"], f"{errors} pipeline errors"
print("synth recall gate ok")
PY
    fi
}

if [[ "${1:-}" == "synth" ]]; then
    sy_dir="$(mktemp -d)"
    trap 'rm -rf "$sy_dir"' EXIT
    synth_smoke "$sy_dir"
    echo "Synth smoke passed."
    exit 0
fi

if [[ "${1:-}" == "degrade" ]]; then
    dd_dir="$(mktemp -d)"
    trap 'rm -rf "$dd_dir"' EXIT
    echo "== governor degrade smoke (2 KiB budget, schema v7, exit 0) =="
    cargo run --offline --release -q --bin dcatch -- detect all --mem-budget 2k \
        --json --scrub-timings --out "$dd_dir/degrade.json"
    python3 - "$dd_dir/degrade.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 7, f"schema {doc['schema_version']}"
steps = doc["degradations"]["governor_degradations"]
assert steps > 0, "a 2 KiB budget must force degradation steps"
for b in doc["benchmarks"]:
    assert b.get("error") is None, f"{b['id']} errored"
    assert b.get("oom") is None, f"{b['id']} hit OOM despite the governor"
print(f"degrade smoke ok: {steps} degradation steps, zero errors, zero OOM")
PY
    echo "== resume determinism (fresh journal vs all-skipped resume) =="
    cargo run --offline --release -q --bin dcatch -- detect all --jobs 1 --json \
        --scrub-timings --resume "$dd_dir/journal.jsonl" --out "$dd_dir/r1.json"
    cargo run --offline --release -q --bin dcatch -- detect all --jobs 1 --json \
        --scrub-timings --resume "$dd_dir/journal.jsonl" --out "$dd_dir/r2.json"
    cmp "$dd_dir/r1.json" "$dd_dir/r2.json"
    echo "Degrade smoke passed."
    exit 0
fi

if [[ "${1:-}" == "stream" ]]; then
    st_dir="$(mktemp -d)"
    trap 'rm -rf "$st_dir"' EXIT
    echo "== streaming equivalence smoke (offline vs --streaming, cross-process) =="
    cargo run --offline --release -q --bin dcatch -- detect MR-3274 --no-trigger \
        --json --scrub-timings --out "$st_dir/offline.json"
    cargo run --offline --release -q --bin dcatch -- detect MR-3274 --no-trigger \
        --json --scrub-timings --streaming --out "$st_dir/streaming.json"
    # project the detection-relevant subset of each report (stage timings,
    # span shapes, metrics, and the streaming section itself legitimately
    # differ between modes) and byte-compare
    project() {
        python3 - "$1" "$2" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
keep = ["id", "trace_stats", "trace_bytes", "candidates", "ta_static",
        "ta_stacks", "sp_static", "sp_stacks", "lp_static", "lp_stacks",
        "verdicts", "detected_known_bug"]
out = [{k: b.get(k) for k in keep} for b in doc["benchmarks"]]
json.dump(out, open(sys.argv[2], "w"), indent=1, sort_keys=True)
PY
    }
    project "$st_dir/offline.json" "$st_dir/offline.proj.json"
    project "$st_dir/streaming.json" "$st_dir/streaming.proj.json"
    cmp "$st_dir/offline.proj.json" "$st_dir/streaming.proj.json"
    python3 - "$st_dir/streaming.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
s = doc["benchmarks"][0]["streaming"]
assert s is not None, "streaming run must report window stats"
assert s["records_forced"] == 0, f"unbounded window force-evicted: {s}"
print(f"streaming section ok: {s}")
PY
    echo "== streambench smoke (planted pair in bounded memory) =="
    cargo run --offline --release -q --bin dcatch -- streambench --records 60000 \
        --json --out "$st_dir/sb.json"
    python3 - "$st_dir/sb.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["planted_pair_found"], f"planted pair missing: {doc}"
assert doc["records_forced"] == 0, f"force-evicted: {doc}"
assert doc["window_peak"] * 20 < doc["records"], (
    f"window {doc['window_peak']} not bounded against {doc['records']} records")
print(f"streambench ok: {doc['records']} records, window peak {doc['window_peak']}")
PY
    echo "Streaming smoke passed."
    exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
    echo "== bench smoke (DCATCH_BENCH_SAMPLES=3) =="
    # a 3-sample smoke run on a contended box can catch a transient load
    # spike; one retry separates those from persistent regressions
    smoke() {
        local name="$1"
        DCATCH_BENCH_SAMPLES=3 cargo bench --offline -p dcatch-bench --bench "$name"
        if ! scripts/bench_compare.sh "BENCH_${name}_baseline.json" "BENCH_${name}.json"; then
            echo "-- retrying $name once to rule out transient load --"
            DCATCH_BENCH_SAMPLES=3 cargo bench --offline -p dcatch-bench --bench "$name"
            scripts/bench_compare.sh "BENCH_${name}_baseline.json" "BENCH_${name}.json"
        fi
    }
    smoke pipeline
    smoke hbgraph
    smoke streaming
    echo "Bench smoke passed."
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --release

echo "== cargo test =="
cargo test --offline -q

echo "== reachability engine equivalence (matrix vs chain clocks) =="
# also part of the suite above; named here so a failure is unmistakable.
# DCATCH_SOAK=1 widens it from 48 to 192 random DAGs.
cargo test --offline -q -p dcatch-hb --test proptests chain_clocks_agree_with_bit_matrix

echo "== timeline smoke (generate + validate + byte determinism) =="
# `dcatch timeline` validates the trace-event document before writing it;
# generating twice and comparing pins the byte-determinism guarantee.
tl_dir="$(mktemp -d)"
trap 'rm -rf "$tl_dir"' EXIT
cargo run --offline --release -q --bin dcatch -- timeline HB-4729 --out "$tl_dir/a.trace.json"
cargo run --offline --release -q --bin dcatch -- timeline HB-4729 --out "$tl_dir/b.trace.json"
cmp "$tl_dir/a.trace.json" "$tl_dir/b.trace.json"

echo "== trigger farm smoke (--trigger-jobs byte determinism) =="
# the triggering farm must produce byte-identical reports for any worker
# count; --scrub-timings zeroes the only legitimately nondeterministic part
cargo run --offline --release -q --bin dcatch -- detect ZK-1144 --json --scrub-timings \
    --trigger-jobs 1 --out "$tl_dir/t1.json"
cargo run --offline --release -q --bin dcatch -- detect ZK-1144 --json --scrub-timings \
    --trigger-jobs 2 --out "$tl_dir/t2.json"
cmp "$tl_dir/t1.json" "$tl_dir/t2.json"

synth_smoke "$tl_dir/synth"

if [[ "${DCATCH_SOAK:-0}" == "1" ]]; then
    soak
fi

echo "All checks passed."
