#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Fully offline — every dependency is a workspace member.
#
#   scripts/check.sh          # fmt + clippy + build + test
#                             # (DCATCH_SOAK=1 appends the fault soak)
#   scripts/check.sh bench    # fast bench smoke run (1 warm-up + 3 samples
#                             # per entry), refreshing BENCH_pipeline.json
#                             # and BENCH_hbgraph.json in the repo root,
#                             # then scripts/bench_compare.sh against the
#                             # committed *_baseline.json files
#   scripts/check.sh soak     # seeded fault soak only: the fault_soak test
#                             # suite plus `dcatch faults all` across a
#                             # fixed seed set — every run must complete or
#                             # degrade to a classified failure
#   scripts/check.sh degrade  # resource-governor smoke: `detect all` under
#                             # a deliberately tiny memory budget must exit
#                             # 0 with a clean schema-v5 report (no errors,
#                             # no OOM, >0 recorded degradation steps), and
#                             # a fresh-journal run must byte-match an
#                             # all-skipped `--resume` of the same journal
set -euo pipefail
cd "$(dirname "$0")/.."

soak() {
    echo "== fault soak (fixed seeds) =="
    cargo test --offline -q -p dcatch --test fault_soak
    cargo run --offline -q --bin dcatch -- faults all --seeds 1,7,42,1011
    echo "Fault soak passed."
}

if [[ "${1:-}" == "soak" ]]; then
    soak
    exit 0
fi

if [[ "${1:-}" == "degrade" ]]; then
    dd_dir="$(mktemp -d)"
    trap 'rm -rf "$dd_dir"' EXIT
    echo "== governor degrade smoke (2 KiB budget, schema v5, exit 0) =="
    cargo run --offline --release -q --bin dcatch -- detect all --mem-budget 2k \
        --json --scrub-timings --out "$dd_dir/degrade.json"
    python3 - "$dd_dir/degrade.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 5, f"schema {doc['schema_version']}"
steps = doc["degradations"]["governor_degradations"]
assert steps > 0, "a 2 KiB budget must force degradation steps"
for b in doc["benchmarks"]:
    assert b.get("error") is None, f"{b['id']} errored"
    assert b.get("oom") is None, f"{b['id']} hit OOM despite the governor"
print(f"degrade smoke ok: {steps} degradation steps, zero errors, zero OOM")
PY
    echo "== resume determinism (fresh journal vs all-skipped resume) =="
    cargo run --offline --release -q --bin dcatch -- detect all --jobs 1 --json \
        --scrub-timings --resume "$dd_dir/journal.jsonl" --out "$dd_dir/r1.json"
    cargo run --offline --release -q --bin dcatch -- detect all --jobs 1 --json \
        --scrub-timings --resume "$dd_dir/journal.jsonl" --out "$dd_dir/r2.json"
    cmp "$dd_dir/r1.json" "$dd_dir/r2.json"
    echo "Degrade smoke passed."
    exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
    echo "== bench smoke (DCATCH_BENCH_SAMPLES=3) =="
    # a 3-sample smoke run on a contended box can catch a transient load
    # spike; one retry separates those from persistent regressions
    smoke() {
        local name="$1"
        DCATCH_BENCH_SAMPLES=3 cargo bench --offline -p dcatch-bench --bench "$name"
        if ! scripts/bench_compare.sh "BENCH_${name}_baseline.json" "BENCH_${name}.json"; then
            echo "-- retrying $name once to rule out transient load --"
            DCATCH_BENCH_SAMPLES=3 cargo bench --offline -p dcatch-bench --bench "$name"
            scripts/bench_compare.sh "BENCH_${name}_baseline.json" "BENCH_${name}.json"
        fi
    }
    smoke pipeline
    smoke hbgraph
    echo "Bench smoke passed."
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --release

echo "== cargo test =="
cargo test --offline -q

echo "== reachability engine equivalence (matrix vs chain clocks) =="
# also part of the suite above; named here so a failure is unmistakable.
# DCATCH_SOAK=1 widens it from 48 to 192 random DAGs.
cargo test --offline -q -p dcatch-hb --test proptests chain_clocks_agree_with_bit_matrix

echo "== timeline smoke (generate + validate + byte determinism) =="
# `dcatch timeline` validates the trace-event document before writing it;
# generating twice and comparing pins the byte-determinism guarantee.
tl_dir="$(mktemp -d)"
trap 'rm -rf "$tl_dir"' EXIT
cargo run --offline --release -q --bin dcatch -- timeline HB-4729 --out "$tl_dir/a.trace.json"
cargo run --offline --release -q --bin dcatch -- timeline HB-4729 --out "$tl_dir/b.trace.json"
cmp "$tl_dir/a.trace.json" "$tl_dir/b.trace.json"

echo "== trigger farm smoke (--trigger-jobs byte determinism) =="
# the triggering farm must produce byte-identical reports for any worker
# count; --scrub-timings zeroes the only legitimately nondeterministic part
cargo run --offline --release -q --bin dcatch -- detect ZK-1144 --json --scrub-timings \
    --trigger-jobs 1 --out "$tl_dir/t1.json"
cargo run --offline --release -q --bin dcatch -- detect ZK-1144 --json --scrub-timings \
    --trigger-jobs 2 --out "$tl_dir/t2.json"
cmp "$tl_dir/t1.json" "$tl_dir/t2.json"

if [[ "${DCATCH_SOAK:-0}" == "1" ]]; then
    soak
fi

echo "All checks passed."
