#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Fully offline — every dependency is a workspace member.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --release

echo "== cargo test =="
cargo test --offline -q

echo "All checks passed."
