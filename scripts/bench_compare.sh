#!/usr/bin/env bash
# Compares two BENCH_*.json documents (baseline vs. current) and fails
# when any shared entry's mean regresses by more than 25%.
#
#   scripts/bench_compare.sh BENCH_hbgraph_baseline.json BENCH_hbgraph.json
#
# Shared boxes drift by 1.3–3× over minutes, so raw wall-clock ratios
# would flag phantom regressions. Three guards keep the gate honest:
#   * every ratio is divided by the *median* ratio across shared entries
#     — ambient drift lifts the whole suite and cancels out, while a code
#     regression moves specific entries and survives normalization (the
#     `calibration_ns` spin-loop probe is printed as a second, code-
#     independent witness of the drift);
#   * an entry only fails when *both* its mean and its min regress past
#     the threshold — a transient load spike inflates the mean while the
#     fastest sample stays honest, a genuine slowdown moves both;
#   * sub-0.5ms entries are jitter-dominated and never fail the gate.
# Entries present on only one side are reported but do not fail the
# comparison (benches gain entries over time). Improvements print their
# speed-up so refreshed baselines are easy to sanity-check.
#
# The `reachability` group additionally gates the two-engine trade-off
# within the *current* document: chain clocks must use at least 4x less
# memory than the bit matrix at the largest size (bytes are deterministic,
# so this is a hard failure), and their build+query mean at the smallest
# size is reported against the 1.15x target (timing is jittery at these
# sizes, so a miss only warns).
#
# The `streaming` group is likewise gated within the current document
# (its bytes are deterministic): at the largest size where both modes ran,
# the online detector's peak resident bytes must undercut the offline
# mode's materialized footprint (trace + reachability index) by >=8x, and
# the online footprint must stay sublinear in the trace -- growing by at
# most a quarter of the record-count growth across the online sweep.
#
# The `profile_overhead` group is likewise gated within the current
# document: `--profile` only adds post-processing (the pipeline itself is
# identical either way), so the *extra* cost it introduces — building the
# profiled report + timeline (`report_profiled`) minus the plain report
# build (`report`) that `--json` always pays — must stay within 5% of the
# end-to-end detect_all/jobs1 mean, by the same dual mean+min rule.
#
# The `governor_overhead` group gates the resource governor within the
# current document: with budgets far above any real footprint the
# governor's bracket (install, per-stage probes, uninstall) is all that
# runs, so the `enabled` entry must stay within 3% of `baseline` over the
# same detect-all workload, by the same dual mean+min rule.
#
# The `trigger_parallel` group gates the triggering farm within the
# current document: each entry's `bytes` carries a checksum of the
# (pair, verdict) outcomes, and the checksum must be identical across
# every `--trigger-jobs` count of the same benchmark (determinism is the
# farm's hard contract — fail on any mismatch). The tjobsN-vs-tjobs1
# speed-up is printed but soft: it tracks the machine's core count, and a
# 1-core box legitimately shows ~1.0x.
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <baseline.json> <current.json>" >&2
    exit 2
fi

python3 - "$1" "$2" <<'PY'
import json
import re
import statistics
import sys

THRESHOLD = 1.25  # fail on >25% mean regression
NOISE_FLOOR_NS = 500_000  # sub-0.5ms entries are jitter-dominated: report only
MEMORY_RATIO = 4.0  # clocks must beat the matrix by this factor at the top size
TIME_RATIO = 1.15  # clocks build+query target at the smallest size (soft)
PROFILE_RATIO = 1.05  # --profile may cost at most 5% on detect-all
STREAM_MEMORY_RATIO = 8.0  # online must beat the offline footprint by this factor
STREAM_SUBLINEAR = 4.0  # online bytes may grow at most 1/4 as fast as records
GOVERNOR_RATIO = 1.03  # an idle governor may cost at most 3% on detect-all

def entries(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for group in doc["groups"]:
        for entry in group["entries"]:
            out[(group["name"], entry["name"])] = (
                entry["mean_ns"],
                entry["min_ns"],
                entry.get("bytes"),
            )
    return out, doc.get("calibration_ns")

base_path, cur_path = sys.argv[1], sys.argv[2]
(base, base_cal), (cur, cur_cal) = entries(base_path), entries(cur_path)

shared = sorted(base.keys() & cur.keys())
# suite-median ratio = ambient machine drift between the two captures
drift = statistics.median(cur[k][0] / base[k][0] for k in shared) if shared else 1.0
if abs(drift - 1.0) > 0.05:
    probe = f", calibration probe {cur_cal / base_cal:.2f}x" if base_cal and cur_cal else ""
    print(f"  ambient drift {drift:.2f}x (suite median{probe}) — normalized out")

failed = []
for key in sorted(base.keys() | cur.keys()):
    label = "/".join(key)
    if key not in base:
        print(f"  new       {label}: {cur[key][0] / 1e6:.2f} ms (no baseline)")
        continue
    if key not in cur:
        print(f"  missing   {label}: present only in {base_path}")
        continue
    (b_mean, b_min, _), (c_mean, c_min, _) = base[key], cur[key]
    ratio = (c_mean / drift) / b_mean if b_mean else float("inf")
    min_ratio = (c_min / drift) / b_min if b_min else float("inf")
    if ratio > THRESHOLD and min_ratio > THRESHOLD:
        if b_mean < NOISE_FLOOR_NS:
            print(
                f"  noisy     {label}: {b_mean / 1e6:.2f} ms -> {c_mean / 1e6:.2f} ms "
                f"({ratio:.2f}x) below the 0.5 ms noise floor — not failed"
            )
            continue
        failed.append(label)
        print(f"  REGRESSED {label}: {b_mean / 1e6:.2f} ms -> {c_mean / 1e6:.2f} ms ({ratio:.2f}x)")
    elif ratio > THRESHOLD:
        print(
            f"  noisy     {label}: mean {b_mean / 1e6:.2f} ms -> {c_mean / 1e6:.2f} ms "
            f"({ratio:.2f}x) but min {min_ratio:.2f}x — load spike, not failed"
        )
    elif ratio < 1.0:
        print(f"  ok        {label}: {b_mean / 1e6:.2f} ms -> {c_mean / 1e6:.2f} ms ({1 / ratio:.2f}x faster)")
    else:
        print(f"  ok        {label}: {b_mean / 1e6:.2f} ms -> {c_mean / 1e6:.2f} ms ({ratio:.2f}x)")

# --- reachability engine gate (current document only) ---
sizes = {}
for (group, name), (mean, _mn, nbytes) in cur.items():
    m = re.fullmatch(r"(matrix|clocks)_(\d+)rec", name)
    if group == "reachability" and m:
        sizes.setdefault(int(m.group(2)), {})[m.group(1)] = (mean, nbytes)
paired = {n: e for n, e in sizes.items() if "matrix" in e and "clocks" in e}
if paired:
    largest, smallest = max(paired), min(paired)
    m_bytes, c_bytes = paired[largest]["matrix"][1], paired[largest]["clocks"][1]
    if m_bytes and c_bytes:
        ratio = m_bytes / c_bytes
        line = (
            f"reachability@{largest}rec memory: clocks {c_bytes} vs "
            f"matrix {m_bytes} bytes ({ratio:.1f}x smaller)"
        )
        if ratio < MEMORY_RATIO:
            failed.append(line)
            print(f"  ENGINES   {line} — below the {MEMORY_RATIO:.0f}x floor")
        else:
            print(f"  engines   {line}")
    m_mean, c_mean = paired[smallest]["matrix"][0], paired[smallest]["clocks"][0]
    t_ratio = c_mean / m_mean if m_mean else float("inf")
    verdict = "ok" if t_ratio <= TIME_RATIO else f"above the {TIME_RATIO}x target (soft)"
    print(
        f"  engines   reachability@{smallest}rec build+query: clocks "
        f"{c_mean / 1e6:.2f} ms vs matrix {m_mean / 1e6:.2f} ms ({t_ratio:.2f}x) — {verdict}"
    )

# --- streaming window gate (current document only) ---
stream = {}
for (group, name), (mean, _mn, nbytes) in cur.items():
    m = re.fullmatch(r"(online|offline)_(\d+)rec", name)
    if group == "streaming" and m:
        stream.setdefault(int(m.group(2)), {})[m.group(1)] = (mean, nbytes)
stream_paired = {n: e for n, e in stream.items() if "online" in e and "offline" in e}
if stream_paired:
    largest = max(stream_paired)
    off_bytes = stream_paired[largest]["offline"][1]
    on_bytes = stream_paired[largest]["online"][1]
    if off_bytes and on_bytes:
        ratio = off_bytes / on_bytes
        line = (
            f"streaming@{largest}rec memory: online {on_bytes} vs "
            f"offline {off_bytes} bytes ({ratio:.0f}x smaller)"
        )
        if ratio < STREAM_MEMORY_RATIO:
            failed.append(line)
            print(f"  STREAMING {line} — below the {STREAM_MEMORY_RATIO:.0f}x floor")
        else:
            print(f"  streaming {line}")
online_sizes = sorted(n for n, e in stream.items() if "online" in e and e["online"][1])
if len(online_sizes) >= 2:
    lo, hi = online_sizes[0], online_sizes[-1]
    size_ratio = hi / lo
    bytes_ratio = stream[hi]["online"][1] / stream[lo]["online"][1]
    line = (
        f"streaming window: {stream[lo]['online'][1]} bytes at {lo}rec -> "
        f"{stream[hi]['online'][1]} bytes at {hi}rec "
        f"({bytes_ratio:.2f}x bytes over {size_ratio:.0f}x records)"
    )
    if bytes_ratio > size_ratio / STREAM_SUBLINEAR:
        failed.append(line)
        print(f"  STREAMING {line} — window is not sublinear in the trace")
    else:
        print(f"  streaming {line}")

# --- --profile overhead gate (current document only) ---
pipeline = cur.get(("detect_all", "jobs1"))
plain = cur.get(("profile_overhead", "report"))
profiled = cur.get(("profile_overhead", "report_profiled"))
if pipeline and plain and profiled:
    budget = PROFILE_RATIO - 1.0  # the extra fraction --profile may cost
    extra_mean = max(0.0, profiled[0] - plain[0])
    extra_min = max(0.0, profiled[1] - plain[1])
    mean_frac = extra_mean / pipeline[0] if pipeline[0] else float("inf")
    min_frac = extra_min / pipeline[1] if pipeline[1] else float("inf")
    line = (
        f"profile overhead: +{extra_mean / 1e6:.2f} ms post-processing on a "
        f"{pipeline[0] / 1e6:.2f} ms detect-all run "
        f"(mean {mean_frac:.1%}, min {min_frac:.1%})"
    )
    if mean_frac > budget and min_frac > budget:
        failed.append(line)
        print(f"  PROFILE   {line} — above the {budget:.0%} budget")
    elif mean_frac > budget:
        print(f"  profile   {line} — mean above {budget:.0%} but min honest: load spike, not failed")
    else:
        print(f"  profile   {line}")

# --- resource-governor overhead gate (current document only) ---
gov_base = cur.get(("governor_overhead", "baseline"))
gov_on = cur.get(("governor_overhead", "enabled"))
if gov_base and gov_on:
    budget = GOVERNOR_RATIO - 1.0
    mean_ratio = gov_on[0] / gov_base[0] if gov_base[0] else float("inf")
    min_ratio = gov_on[1] / gov_base[1] if gov_base[1] else float("inf")
    line = (
        f"governor overhead: enabled {gov_on[0] / 1e6:.2f} ms vs baseline "
        f"{gov_base[0] / 1e6:.2f} ms (mean {mean_ratio - 1.0:+.1%}, min {min_ratio - 1.0:+.1%})"
    )
    if mean_ratio > GOVERNOR_RATIO and min_ratio > GOVERNOR_RATIO:
        failed.append(line)
        print(f"  GOVERNOR  {line} — above the {budget:.0%} budget")
    elif mean_ratio > GOVERNOR_RATIO:
        print(f"  governor  {line} — mean above {budget:.0%} but min honest: load spike, not failed")
    else:
        print(f"  governor  {line}")

# --- trigger farm gate (current document only) ---
farm = {}
for (group, name), (mean, _mn, nbytes) in cur.items():
    m = re.fullmatch(r"(.+)_tjobs(\d+)", name)
    if group == "trigger_parallel" and m:
        farm.setdefault(m.group(1), {})[int(m.group(2))] = (mean, nbytes)
for bench_id, by_jobs in sorted(farm.items()):
    if 1 not in by_jobs:
        continue
    serial_mean, serial_sum = by_jobs[1]
    for n, (mean, checksum) in sorted(by_jobs.items()):
        if n == 1:
            continue
        if checksum != serial_sum:
            line = (
                f"trigger_parallel/{bench_id}: verdict checksum differs "
                f"between tjobs1 ({serial_sum}) and tjobs{n} ({checksum})"
            )
            failed.append(line)
            print(f"  FARM      {line}")
            continue
        speedup = serial_mean / mean if mean else float("inf")
        print(
            f"  farm      trigger_parallel/{bench_id} tjobs{n}: verdicts identical, "
            f"{speedup:.2f}x vs tjobs1 (soft; tracks core count)"
        )

if failed:
    print(f"{len(failed)} gate failure{'' if len(failed) == 1 else 's'} vs {base_path}")
    sys.exit(1)
print(f"no >25% regressions vs {base_path}")
PY
